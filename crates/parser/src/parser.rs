//! The recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What was expected / what went wrong.
    pub message: String,
    /// Index of the offending token.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, position: e.offset }
    }
}

/// Keywords that may not be used as bare column / function identifiers.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "UNION", "ALL",
    "DISTINCT", "AS", "AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "CASE", "WHEN", "THEN",
    "ELSE", "END", "IS", "IN", "BETWEEN", "LIKE", "EXISTS", "CREATE", "TABLE", "INSERT",
    "INTO", "VALUES", "DROP", "DESC", "ASC",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

/// Parses a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parses a `;`-separated script into statements (empty statements skipped).
pub fn parse_script(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.pos >= p.tokens.len() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parses a standalone scalar expression (used by the generators).
pub fn parse_expression(sql: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(e)
}

/// Maximum expression nesting the parser accepts; the recursion guard that a
/// real DBMS parser needs for exactly the reasons §5.3 of the paper explains.
const MAX_PARSE_DEPTH: usize = 200;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), position: self.pos }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {t}")))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {kw}")))
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if !is_reserved(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Some(t) if t.is_kw("SELECT") || *t == Token::LParen => {
                Ok(Statement::Select(Box::new(self.select_stmt()?)))
            }
            Some(t) if t.is_kw("CREATE") => self.create_table(),
            Some(t) if t.is_kw("INSERT") => self.insert(),
            Some(t) if t.is_kw("DROP") => self.drop_table(),
            _ => Err(self.err("expected SELECT, CREATE, INSERT or DROP")),
        }
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, ParseError> {
        let body = self.select_body()?;
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("LIMIT") {
            match self.advance() {
                Some(Token::Number(n)) => {
                    limit = Some(n.parse().map_err(|_| self.err("LIMIT out of range"))?);
                }
                _ => return Err(self.err("expected number after LIMIT")),
            }
        }
        Ok(SelectStmt { body, order_by, limit })
    }

    fn select_body(&mut self) -> Result<SelectBody, ParseError> {
        let mut left = self.select_atom()?;
        while self.peek().is_some_and(|t| t.is_kw("UNION")) {
            self.pos += 1;
            let all = self.eat_kw("ALL");
            let right = self.select_atom()?;
            left = SelectBody::Union { left: Box::new(left), right: Box::new(right), all };
        }
        Ok(left)
    }

    fn select_atom(&mut self) -> Result<SelectBody, ParseError> {
        if self.eat(&Token::LParen) {
            let body = self.select_body()?;
            self.expect(&Token::RParen)?;
            Ok(body)
        } else {
            Ok(SelectBody::Query(Box::new(self.query()?)))
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let mut items = Vec::new();
        loop {
            // Bare `*` projection only when not followed by an operator that
            // would make it multiplication (it cannot be: `SELECT *` then
            // `, `, FROM or end).
            if self.peek() == Some(&Token::Star)
                && matches!(
                    self.peek_at(1),
                    None | Some(Token::Comma) | Some(Token::Semicolon) | Some(Token::RParen)
                )
                || (self.peek() == Some(&Token::Star)
                    && self.peek_at(1).is_some_and(|t| t.is_kw("FROM")))
            {
                self.pos += 1;
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.identifier()?)
                } else {
                    match self.peek() {
                        Some(Token::Ident(s)) if !is_reserved(s) => {
                            let s = s.clone();
                            self.pos += 1;
                            Some(s)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") { Some(self.table_ref()?) } else { None };
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        Ok(Query { distinct, items, from, where_clause, group_by, having })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        if self.eat(&Token::LParen) {
            let query = self.select_stmt()?;
            self.expect(&Token::RParen)?;
            let alias = self.opt_alias()?;
            Ok(TableRef::Subquery { query: Box::new(query), alias })
        } else {
            let name = self.identifier()?;
            let alias = self.opt_alias()?;
            Ok(TableRef::Named { name, alias })
        }
    }

    fn opt_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw("AS") {
            return Ok(Some(self.identifier()?));
        }
        match self.peek() {
            Some(Token::Ident(s)) if !is_reserved(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let cname = self.identifier()?;
            let type_name = self.type_name()?;
            let not_null = if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                true
            } else {
                self.eat_kw("NULL");
                false
            };
            columns.push(ColumnDef { name: cname, type_name, not_null });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable(CreateTable { name, if_not_exists, columns }))
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        let mut columns = Vec::new();
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            loop {
                columns.push(self.identifier()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert { table, columns, rows }))
    }

    fn drop_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("DROP")?;
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn type_name(&mut self) -> Result<TypeName, ParseError> {
        let name = match self.advance() {
            Some(Token::Ident(s)) => s,
            _ => return Err(self.err("expected type name")),
        };
        let mut params = Vec::new();
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            loop {
                match self.advance() {
                    Some(Token::Number(n)) => params.push(n),
                    Some(Token::Ident(s)) => params.push(s),
                    _ => return Err(self.err("expected type parameter")),
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(TypeName { name, params })
    }

    // ---- expression grammar ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return Err(self.err("expression too deeply nested"));
        }
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Eq) => Some(BinaryOp::Eq),
                Some(Token::NotEq) => Some(BinaryOp::NotEq),
                Some(Token::Lt) => Some(BinaryOp::Lt),
                Some(Token::LtEq) => Some(BinaryOp::LtEq),
                Some(Token::Gt) => Some(BinaryOp::Gt),
                Some(Token::GtEq) => Some(BinaryOp::GtEq),
                Some(t) if t.is_kw("LIKE") => Some(BinaryOp::Like),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += 1;
                let right = self.additive()?;
                left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
                continue;
            }
            if self.eat_kw("IS") {
                let negated = self.eat_kw("NOT");
                self.expect_kw("NULL")?;
                left = Expr::IsNull { expr: Box::new(left), negated };
                continue;
            }
            // [NOT] IN / [NOT] BETWEEN.
            let negated = if self.peek().is_some_and(|t| t.is_kw("NOT"))
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.is_kw("IN") || t.is_kw("BETWEEN"))
            {
                self.pos += 1;
                true
            } else {
                false
            };
            if self.eat_kw("IN") {
                self.expect(&Token::LParen)?;
                let mut list = Vec::new();
                loop {
                    list.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                left = Expr::InList { expr: Box::new(left), list, negated };
                continue;
            }
            if self.eat_kw("BETWEEN") {
                let low = self.additive()?;
                self.expect_kw("AND")?;
                let high = self.additive()?;
                left = Expr::Between {
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
                continue;
            }
            if negated {
                return Err(self.err("expected IN or BETWEEN after NOT"));
            }
            break;
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                Some(Token::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(e) })
            }
            Some(Token::Plus) => {
                self.pos += 1;
                let e = self.unary()?;
                Ok(Expr::Unary { op: UnaryOp::Plus, expr: Box::new(e) })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat(&Token::DoubleColon) {
            let type_name = self.type_name()?;
            e = Expr::Cast { expr: Box::new(e), type_name, postgres_style: true };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            self.depth -= 1;
            return Err(self.err("expression too deeply nested"));
        }
        let r = self.primary_inner();
        self.depth -= 1;
        r
    }

    fn primary_inner(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Number(n)))
            }
            Some(Token::String(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::String(s)))
            }
            Some(Token::HexBlob(b)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::HexBlob(b)))
            }
            Some(Token::Star) => {
                self.pos += 1;
                Ok(Expr::Star)
            }
            Some(Token::LBracket) => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(Expr::ArrayLiteral(items))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                // Subquery or parenthesised expression.
                if self.peek().is_some_and(|t| t.is_kw("SELECT")) {
                    let q = self.select_stmt()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.expr()?;
                // A parenthesised list is an anonymous row value.
                if self.peek() == Some(&Token::Comma) {
                    let mut items = vec![e];
                    while self.eat(&Token::Comma) {
                        items.push(self.expr()?);
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Row(items));
                }
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(word)) => self.ident_led(&word),
            _ => Err(self.err("expected expression")),
        }
    }

    fn ident_led(&mut self, word: &str) -> Result<Expr, ParseError> {
        let upper = word.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => {
                self.pos += 1;
                return Ok(Expr::Literal(Literal::Null));
            }
            "TRUE" => {
                self.pos += 1;
                return Ok(Expr::Literal(Literal::Boolean(true)));
            }
            "FALSE" => {
                self.pos += 1;
                return Ok(Expr::Literal(Literal::Boolean(false)));
            }
            "CASE" => return self.case_expr(),
            "CAST" | "CONVERT"
                // CAST(expr AS type) / CONVERT(expr, type).
                if self.peek_at(1) == Some(&Token::LParen) => {
                    return self.cast_call(&upper);
                }
            "ROW"
                if self.peek_at(1) == Some(&Token::LParen) => {
                    self.pos += 2;
                    let mut items = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            items.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Row(items));
                }
            "EXISTS"
                if self.peek_at(1) == Some(&Token::LParen) => {
                    self.pos += 2;
                    let q = self.select_stmt()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Exists(Box::new(q)));
                }
            "INTERVAL" => {
                // MySQL quirk: `INTERVAL(` is the INTERVAL *function*
                // (the MDEV-14596 PoC), otherwise an interval literal.
                if self.peek_at(1) == Some(&Token::LParen) {
                    let name = word.to_string();
                    self.pos += 2;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Function(FunctionExpr {
                        name,
                        distinct: false,
                        args,
                    }));
                }
                // INTERVAL <quantity> <unit>.
                self.pos += 1;
                let quantity = self.unary()?;
                let unit = match self.advance() {
                    Some(Token::Ident(u)) => u,
                    _ => return Err(self.err("expected interval unit")),
                };
                return Ok(Expr::IntervalLiteral { quantity: Box::new(quantity), unit });
            }
            "DATE" | "TIME" | "TIMESTAMP" => {
                // Typed literal: DATE '2024-01-01'.
                if let Some(Token::String(s)) = self.peek_at(1).cloned() {
                    self.pos += 2;
                    return Ok(Expr::Cast {
                        expr: Box::new(Expr::Literal(Literal::String(s))),
                        type_name: TypeName::simple(&upper),
                        postgres_style: false,
                    });
                }
            }
            _ => {}
        }
        // MySQL's string INSERT() is a function despite INSERT being a
        // statement keyword; allow it in expression position.
        let keyword_function =
            upper == "INSERT" && self.peek_at(1) == Some(&Token::LParen);
        if is_reserved(word) && !keyword_function {
            return Err(self.err(&format!("unexpected keyword {word}")));
        }
        // Function call?
        if self.peek_at(1) == Some(&Token::LParen) {
            let name = word.to_string();
            self.pos += 2;
            let distinct = self.eat_kw("DISTINCT");
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function(FunctionExpr { name, distinct, args }));
        }
        // Qualified or bare column.
        let mut name = word.to_string();
        self.pos += 1;
        while self.eat(&Token::Dot) {
            let part = match self.advance() {
                Some(Token::Ident(s)) => s,
                Some(Token::Star) => "*".to_string(),
                _ => return Err(self.err("expected identifier after '.'")),
            };
            name.push('.');
            name.push_str(&part);
        }
        Ok(Expr::Column(name))
    }

    fn cast_call(&mut self, kind: &str) -> Result<Expr, ParseError> {
        self.pos += 2; // keyword + '('
        let inner = self.expr()?;
        if kind == "CAST" {
            self.expect_kw("AS")?;
        } else {
            self.expect(&Token::Comma)?;
        }
        let type_name = self.type_name()?;
        self.expect(&Token::RParen)?;
        Ok(Expr::Cast { expr: Box::new(inner), type_name, postgres_style: false })
    }

    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("CASE")?;
        let operand = if self.peek().is_some_and(|t| t.is_kw("WHEN")) {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let w = self.expr()?;
            self.expect_kw("THEN")?;
            let t = self.expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN"));
        }
        let else_expr = if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, branches, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) {
        let s1 = parse_statement(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let printed = s1.to_string();
        let s2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        assert_eq!(s1, s2, "roundtrip of {sql:?} via {printed:?}");
    }

    #[test]
    fn paper_listing_pocs_parse() {
        // Every PoC shown in the paper must be parseable.
        for sql in [
            "SELECT toDecimalString('110'::Decimal256(45), *);",
            "SELECT FORMAT('0', 50, 'de_DE');",
            "SELECT COLUMN_JSON(COLUMN_CREATE('x', 123456789012345678901234567890123456789012346789));",
            "SELECT * FROM (SELECT IFNULL(CONVERT(NULL, UNSIGNED), NULL)) sq;",
            "SELECT REPEAT('[', 1000)::json;",
            "SELECT INTERVAL(ROW(1,1),ROW(1,2));",
            "SELECT AVG(1.299999999999999999999999999999999999999999999999999999999999999999);",
            "SELECT CONTAINS('x', 'x', *);",
            "SELECT JSONB_OBJECT_AGG(DISTINCT 'a', 'abc');",
            "SELECT REPEAT('[{\"a\":', 100000) UNION (SELECT [ ]);",
            "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]');",
            "SELECT ST_ASTEXT(BOUNDARY(INET6_ATON('255.255.255.255')));",
            "SELECT UpdateXML('<a><c></c></a>', '/a/c[1]', '<c><b></b></c>');",
        ] {
            parse_statement(sql).unwrap_or_else(|e| panic!("{sql:?}: {e}"));
        }
    }

    #[test]
    fn roundtrips() {
        for sql in [
            "SELECT 1",
            "SELECT DISTINCT a, b AS x FROM t WHERE a > 1 GROUP BY a, b HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 10",
            "SELECT * FROM t",
            "SELECT f(NULL), f(''), f(*), f(-0.99999)",
            "SELECT CAST('1' AS INTEGER)",
            "SELECT '1'::INTEGER",
            "SELECT a FROM (SELECT 1 AS a) sub",
            "SELECT 1 UNION SELECT 2",
            "SELECT 1 UNION ALL SELECT 2",
            "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR(10))",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
            "DROP TABLE IF EXISTS t",
            "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t",
            "SELECT CASE a WHEN 1 THEN 2 END FROM t",
            "SELECT a IS NULL, b IS NOT NULL FROM t",
            "SELECT a IN (1, 2, 3), b NOT IN (4)",
            "SELECT a BETWEEN 1 AND 10 FROM t",
            "SELECT ROW(1, 2), [1, 2, 3], []",
            "SELECT -x, NOT y FROM t",
            "SELECT 'a' || 'b'",
            "SELECT (SELECT 1)",
            "SELECT EXISTS (SELECT 1)",
            "SELECT INTERVAL 5 DAY",
            "SELECT 1 + 2 * 3 - 4 / 5 % 6",
            "SELECT x'DEAD'",
            "SELECT COUNT(DISTINCT a) FROM t",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
        match e {
            Expr::Binary { op: BinaryOp::Add, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = parse_expression("a OR b AND c").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinaryOp::Or, .. }));
    }

    #[test]
    fn typed_literals_become_casts() {
        let e = parse_expression("DATE '2024-01-01'").unwrap();
        assert!(matches!(e, Expr::Cast { .. }));
    }

    #[test]
    fn star_argument() {
        let e = parse_expression("CONTAINS('x', 'x', *)").unwrap();
        match e {
            Expr::Function(f) => {
                assert_eq!(f.args.len(), 3);
                assert_eq!(f.args[2], Expr::Star);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn long_literals_preserved() {
        let digits = "9".repeat(120);
        let e = parse_expression(&format!("AVG({digits})")).unwrap();
        assert_eq!(e.to_string(), format!("AVG({digits})"));
    }

    #[test]
    fn parse_errors() {
        for sql in [
            "",
            "SELECT",
            "SELECT FROM",
            "SELECT 1 FROM",
            "SELECT f(",
            "CREATE TABLE t",
            "INSERT INTO t",
            "SELECT 1 extra garbage ' ",
            "SELECT CASE END",
            "SELECT 1 NOT 2",
        ] {
            assert!(parse_statement(sql).is_err(), "{sql:?} should fail");
        }
    }

    #[test]
    fn depth_guard_rejects_pathological_nesting() {
        let deep = format!("SELECT {}1{}", "(".repeat(5000), ")".repeat(5000));
        let e = parse_statement(&deep).unwrap_err();
        assert!(e.message.contains("nested"), "{e}");
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);; SELECT a FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn qualified_columns() {
        let e = parse_expression("t.a + s.b").unwrap();
        assert_eq!(e.to_string(), "t.a + s.b");
    }

    #[test]
    fn union_of_select_star_and_empty_array() {
        // Case 4 from the paper needs `UNION (SELECT [ ])`.
        roundtrip("SELECT REPEAT('[{\"a\":', 100000) UNION (SELECT [ ])");
    }
}
