//! The SQL lexer.
//!
//! Numeric literals are kept as raw text: the paper's boundary literals
//! (e.g. the 64-digit `AVG` argument of Listing 6) exceed every machine
//! integer width, and the digit count itself is the boundary being tested,
//! so the token stream must not normalise them.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Numeric literal, raw text (may be integer, decimal or exponent form).
    Number(String),
    /// Single-quoted string literal (unescaped content).
    String(String),
    /// Hex blob literal `x'AB01'` (decoded bytes).
    HexBlob(Vec<u8>),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semicolon,
    /// `.`.
    Dot,
    /// `*`.
    Star,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `::` (PostgreSQL cast).
    DoubleColon,
    /// `||` (string concatenation).
    Concat,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(s) => write!(f, "{s}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::HexBlob(b) => {
                write!(f, "x'")?;
                for byte in b {
                    write!(f, "{byte:02X}")?;
                }
                write!(f, "'")
            }
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::DoubleColon => write!(f, "::"),
            Token::Concat => write!(f, "||"),
        }
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises SQL text. Comments (`-- ...` and `/* ... */`) are skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, LexError> {
    let bytes = sql.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                let start = pos;
                pos += 2;
                loop {
                    if pos + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            offset: start,
                        });
                    }
                    if bytes[pos] == b'*' && bytes[pos + 1] == b'/' {
                        pos += 2;
                        break;
                    }
                    pos += 1;
                }
            }
            b'\'' => {
                let (s, next) = lex_string(sql, pos)?;
                out.push(Token::String(s));
                pos = next;
            }
            b'x' | b'X'
                if bytes.get(pos + 1) == Some(&b'\'') =>
            {
                let (s, next) = lex_string(sql, pos + 1)?;
                let blob = decode_hex(&s).ok_or(LexError {
                    message: format!("invalid hex literal {s:?}"),
                    offset: pos,
                })?;
                out.push(Token::HexBlob(blob));
                pos = next;
            }
            b'"' | b'`' => {
                // Quoted identifier.
                let quote = c;
                let start = pos;
                pos += 1;
                let begin = pos;
                while pos < bytes.len() && bytes[pos] != quote {
                    pos += 1;
                }
                if pos >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated quoted identifier".into(),
                        offset: start,
                    });
                }
                out.push(Token::Ident(sql[begin..pos].to_string()));
                pos += 1;
            }
            b'0'..=b'9' => {
                let (tok, next) = lex_number(sql, pos)?;
                out.push(tok);
                pos = next;
            }
            b'.' if bytes.get(pos + 1).is_some_and(u8::is_ascii_digit) => {
                let (tok, next) = lex_number(sql, pos)?;
                out.push(tok);
                pos = next;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_' || bytes[pos] == b'$')
                {
                    pos += 1;
                }
                out.push(Token::Ident(sql[start..pos].to_string()));
            }
            b'(' => {
                out.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                out.push(Token::RParen);
                pos += 1;
            }
            b'[' => {
                out.push(Token::LBracket);
                pos += 1;
            }
            b']' => {
                out.push(Token::RBracket);
                pos += 1;
            }
            b',' => {
                out.push(Token::Comma);
                pos += 1;
            }
            b';' => {
                out.push(Token::Semicolon);
                pos += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                pos += 1;
            }
            b'*' => {
                out.push(Token::Star);
                pos += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                pos += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                pos += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                pos += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                pos += 1;
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                out.push(Token::NotEq);
                pos += 2;
            }
            b'<' => {
                match bytes.get(pos + 1) {
                    Some(b'>') => {
                        out.push(Token::NotEq);
                        pos += 2;
                    }
                    Some(b'=') => {
                        out.push(Token::LtEq);
                        pos += 2;
                    }
                    _ => {
                        out.push(Token::Lt);
                        pos += 1;
                    }
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    out.push(Token::GtEq);
                    pos += 2;
                } else {
                    out.push(Token::Gt);
                    pos += 1;
                }
            }
            b':' if bytes.get(pos + 1) == Some(&b':') => {
                out.push(Token::DoubleColon);
                pos += 2;
            }
            b'|' if bytes.get(pos + 1) == Some(&b'|') => {
                out.push(Token::Concat);
                pos += 2;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {:?}", other as char),
                    offset: pos,
                })
            }
        }
    }
    Ok(out)
}

fn lex_string(sql: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = sql.as_bytes();
    debug_assert_eq!(bytes[start], b'\'');
    let mut pos = start + 1;
    let mut out = String::new();
    loop {
        if pos >= bytes.len() {
            return Err(LexError { message: "unterminated string".into(), offset: start });
        }
        match bytes[pos] {
            b'\'' => {
                if bytes.get(pos + 1) == Some(&b'\'') {
                    out.push('\'');
                    pos += 2;
                } else {
                    return Ok((out, pos + 1));
                }
            }
            b'\\' if bytes.get(pos + 1).is_some_and(u8::is_ascii) => {
                // MySQL-style backslash escapes (ASCII only; a backslash
                // before a multi-byte character falls through to the
                // UTF-8-aware arm below so `pos` never lands mid-codepoint).
                let esc = bytes[pos + 1];
                match esc {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'0' => out.push('\0'),
                    other => out.push(other as char),
                }
                pos += 2;
            }
            _ => {
                let rest = &sql[pos..];
                let c = rest.chars().next().ok_or(LexError {
                    message: "invalid utf-8".into(),
                    offset: pos,
                })?;
                out.push(c);
                pos += c.len_utf8();
            }
        }
    }
}

fn lex_number(sql: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = sql.as_bytes();
    let mut pos = start;
    let mut seen_dot = false;
    while pos < bytes.len() {
        match bytes[pos] {
            b'0'..=b'9' => pos += 1,
            b'.' if !seen_dot => {
                seen_dot = true;
                pos += 1;
            }
            b'e' | b'E' => {
                let mut j = pos + 1;
                if matches!(bytes.get(j), Some(b'-' | b'+')) {
                    j += 1;
                }
                if matches!(bytes.get(j), Some(b'0'..=b'9')) {
                    pos = j;
                    while matches!(bytes.get(pos), Some(b'0'..=b'9')) {
                        pos += 1;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    Ok((Token::Number(sql[start..pos].to_string()), pos))
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for i in (0..b.len()).step_by(2) {
        let hi = (b[i] as char).to_digit(16)?;
        let lo = (b[i + 1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_numbers() {
        let toks = tokenize("SELECT 1, 2.5, .5, 1e3").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Number("1".into()),
                Token::Comma,
                Token::Number("2.5".into()),
                Token::Comma,
                Token::Number(".5".into()),
                Token::Comma,
                Token::Number("1e3".into()),
            ]
        );
    }

    #[test]
    fn long_numbers_stay_raw() {
        let digits = "9".repeat(100);
        let toks = tokenize(&format!("SELECT {digits}")).unwrap();
        assert_eq!(toks[1], Token::Number(digits));
    }

    #[test]
    fn strings_with_escapes() {
        let toks = tokenize("SELECT 'it''s', 'a\\nb'").unwrap();
        assert_eq!(toks[1], Token::String("it's".into()));
        assert_eq!(toks[3], Token::String("a\nb".into()));
    }

    #[test]
    fn hex_blobs() {
        let toks = tokenize("SELECT x'DEAD'").unwrap();
        assert_eq!(toks[1], Token::HexBlob(vec![0xde, 0xad]));
        assert!(tokenize("SELECT x'XYZ'").is_err());
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <> b <= c >= d != e :: f || g").unwrap();
        let ops: Vec<&Token> = toks.iter().filter(|t| !matches!(t, Token::Ident(_))).collect();
        assert_eq!(
            ops,
            vec![&Token::NotEq, &Token::LtEq, &Token::GtEq, &Token::NotEq, &Token::DoubleColon, &Token::Concat]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- trailing\n, /* mid */ 2").unwrap();
        assert_eq!(toks.len(), 4);
        assert!(tokenize("SELECT /* unterminated").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("SELECT \"weird name\", `col`").unwrap();
        assert_eq!(toks[1], Token::Ident("weird name".into()));
        assert_eq!(toks[3], Token::Ident("col".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("SELECT 'abc").is_err());
        assert!(tokenize("SELECT 'a''").is_err());
    }

    #[test]
    fn star_and_punctuation() {
        let toks = tokenize("f(*, a.b);").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("f".into()),
                Token::LParen,
                Token::Star,
                Token::Comma,
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::RParen,
                Token::Semicolon,
            ]
        );
    }
}
