//! The SQL abstract syntax tree and its printer.
//!
//! The printer (`Display` impls) renders canonical SQL that re-parses to the
//! same tree — the property the generators rely on when they splice pattern-
//! mutated function expressions back into statements.

use soft_types::value::quote_sql_string;
use std::fmt;

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...` (possibly a UNION chain).
    Select(Box<SelectStmt>),
    /// `CREATE TABLE ...`.
    CreateTable(CreateTable),
    /// `INSERT INTO ...`.
    Insert(Insert),
    /// `DROP TABLE ...`.
    DropTable {
        /// Table name.
        name: String,
        /// `IF EXISTS` was present.
        if_exists: bool,
    },
}

/// A full select statement: a body plus ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// The query or UNION chain.
    pub body: SelectBody,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// A select body: either a simple query block or a UNION of two bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectBody {
    /// A plain query block.
    Query(Box<Query>),
    /// `left UNION [ALL] right`.
    Union {
        /// Left branch.
        left: Box<SelectBody>,
        /// Right branch.
        right: Box<SelectBody>,
        /// `UNION ALL` (keeps duplicates).
        all: bool,
    },
}

/// One query block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` source.
    pub from: Option<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

/// A projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// The bare `*` projection.
    Wildcard,
}

/// A `FROM` source.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table with an optional alias.
    Named {
        /// Table name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// A parenthesised subquery with an optional alias.
    Subquery {
        /// The subquery.
        query: Box<SelectStmt>,
        /// Alias.
        alias: Option<String>,
    },
}

/// An `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// `IF NOT EXISTS` was present.
    pub if_not_exists: bool,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
}

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub type_name: TypeName,
    /// `NOT NULL` constraint.
    pub not_null: bool,
}

/// `INSERT INTO`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Vec<String>,
    /// Value rows.
    pub rows: Vec<Vec<Expr>>,
}

/// A type name as written in SQL, e.g. `DECIMAL(10,2)` or ClickHouse-style
/// `Decimal256(45)` — the base name plus raw parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TypeName {
    /// Base name, original spelling.
    pub name: String,
    /// Raw textual parameters.
    pub params: Vec<String>,
}

impl TypeName {
    /// A bare type name without parameters.
    pub fn simple(name: &str) -> TypeName {
        TypeName { name: name.to_string(), params: Vec::new() }
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.params.is_empty() {
            write!(f, "({})", self.params.join(","))?;
        }
        Ok(())
    }
}

/// A literal value as written in the source.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Numeric literal, raw text (arbitrary digit count).
    Number(String),
    /// String literal.
    String(String),
    /// Hex blob `x'...'`.
    HexBlob(Vec<u8>),
    /// `NULL`.
    Null,
    /// `TRUE` / `FALSE`.
    Boolean(bool),
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Unary plus.
    Plus,
    /// Logical NOT.
    Not,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `=`.
    Eq,
    /// `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `||`.
    Concat,
    /// `LIKE`.
    Like,
}

impl BinaryOp {
    /// Binding strength for printing: higher binds tighter.
    pub fn precedence(&self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq
            | BinaryOp::Like => 3,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 4,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => 5,
        }
    }

    /// The SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
            BinaryOp::Like => "LIKE",
        }
    }
}

/// A function call expression.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionExpr {
    /// Function name, original spelling.
    pub name: String,
    /// `DISTINCT` inside the call (aggregates).
    pub distinct: bool,
    /// Arguments.
    pub args: Vec<Expr>,
}

impl FunctionExpr {
    /// Creates a plain (non-distinct) call.
    pub fn new(name: &str, args: Vec<Expr>) -> FunctionExpr {
        FunctionExpr { name: name.to_string(), distinct: false, args }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Literal),
    /// A (possibly qualified) column reference.
    Column(String),
    /// The `*` argument / projection pseudo-expression.
    Star,
    /// A function call.
    Function(FunctionExpr),
    /// `CAST(expr AS type)` or `expr::type`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type.
        type_name: TypeName,
        /// Written with PostgreSQL `::` syntax.
        postgres_style: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Optional comparison operand.
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` expression.
        else_expr: Option<Box<Expr>>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// The list.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `ROW(a, b, ...)`.
    Row(Vec<Expr>),
    /// `[a, b, ...]` array literal.
    ArrayLiteral(Vec<Expr>),
    /// A parenthesised scalar subquery.
    Subquery(Box<SelectStmt>),
    /// `EXISTS (subquery)`.
    Exists(Box<SelectStmt>),
    /// `INTERVAL n unit`.
    IntervalLiteral {
        /// Quantity expression.
        quantity: Box<Expr>,
        /// Unit keyword (DAY, MONTH, ...).
        unit: String,
    },
}

impl Expr {
    /// Shorthand for a numeric literal.
    pub fn number(raw: &str) -> Expr {
        Expr::Literal(Literal::Number(raw.to_string()))
    }

    /// Shorthand for a string literal.
    pub fn string(s: &str) -> Expr {
        Expr::Literal(Literal::String(s.to_string()))
    }

    /// Shorthand for NULL.
    pub fn null() -> Expr {
        Expr::Literal(Literal::Null)
    }

    /// Shorthand for a function call.
    pub fn func(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Function(FunctionExpr::new(name, args))
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::CreateTable(c) => write!(f, "{c}"),
            Statement::Insert(i) => write!(f, "{i}"),
            Statement::DropTable { name, if_exists } => {
                write!(f, "DROP TABLE ")?;
                if *if_exists {
                    write!(f, "IF EXISTS ")?;
                }
                write!(f, "{name}")
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", item.expr)?;
                if item.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectBody::Query(q) => write!(f, "{q}"),
            SelectBody::Union { left, right, all } => {
                write!(f, "{left} UNION ")?;
                if *all {
                    write!(f, "ALL ")?;
                }
                match right.as_ref() {
                    // Keep right-nested unions unambiguous.
                    SelectBody::Union { .. } => write!(f, "({right})"),
                    SelectBody::Query(_) => write!(f, "{right}"),
                }
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.items.is_empty() {
            write!(f, "1")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => {
                write!(f, "({query})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE ")?;
        if self.if_not_exists {
            write!(f, "IF NOT EXISTS ")?;
        }
        write!(f, "{} (", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.type_name)?;
            if c.not_null {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, e) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(s) => write!(f, "{s}"),
            Literal::String(s) => write!(f, "{}", quote_sql_string(s)),
            Literal::HexBlob(b) => {
                write!(f, "x'")?;
                for byte in b {
                    write!(f, "{byte:02X}")?;
                }
                write!(f, "'")
            }
            Literal::Null => write!(f, "NULL"),
            Literal::Boolean(true) => write!(f, "TRUE"),
            Literal::Boolean(false) => write!(f, "FALSE"),
        }
    }
}

impl fmt::Display for FunctionExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Star => write!(f, "*"),
            Expr::Function(fx) => write!(f, "{fx}"),
            Expr::Cast { expr, type_name, postgres_style } => {
                if *postgres_style {
                    // Parenthesise the operand when it is compound.
                    match expr.as_ref() {
                        Expr::Literal(_) | Expr::Column(_) | Expr::Function(_) => {
                            write!(f, "{expr}::{type_name}")
                        }
                        _ => write!(f, "({expr})::{type_name}"),
                    }
                } else {
                    write!(f, "CAST({expr} AS {type_name})")
                }
            }
            Expr::Case { operand, branches, else_expr } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Unary { op, expr } => {
                let sym = match op {
                    UnaryOp::Neg => "-",
                    UnaryOp::Plus => "+",
                    UnaryOp::Not => "NOT ",
                };
                match expr.as_ref() {
                    Expr::Literal(_) | Expr::Column(_) | Expr::Function(_) => {
                        write!(f, "{sym}{expr}")
                    }
                    _ => write!(f, "{sym}({expr})"),
                }
            }
            Expr::Binary { left, op, right } => {
                // Parenthesise a child when it binds looser than this node,
                // or (on the right) equally loose — the grammar is
                // left-associative.
                let needs_paren = |e: &Expr, right_side: bool| match e {
                    Expr::Binary { op: child, .. } => {
                        child.precedence() < op.precedence()
                            || (right_side && child.precedence() == op.precedence())
                    }
                    Expr::Between { .. } | Expr::IsNull { .. } | Expr::InList { .. } => true,
                    _ => false,
                };
                if needs_paren(left, false) {
                    write!(f, "({left})")?;
                } else {
                    write!(f, "{left}")?;
                }
                write!(f, " {} ", op.sql())?;
                if needs_paren(right, true) {
                    write!(f, "({right})")
                } else {
                    write!(f, "{right}")
                }
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS ")?;
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "NULL")
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "{expr} ")?;
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Between { expr, low, high, negated } => {
                write!(f, "{expr} ")?;
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "BETWEEN {low} AND {high}")
            }
            Expr::Row(items) => {
                write!(f, "ROW(")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::ArrayLiteral(items) => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::Exists(q) => write!(f, "EXISTS ({q})"),
            Expr::IntervalLiteral { quantity, unit } => {
                write!(f, "INTERVAL {quantity} {unit}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_printing() {
        let e = Expr::func("REPEAT", vec![Expr::string("["), Expr::number("1000")]);
        assert_eq!(e.to_string(), "REPEAT('[', 1000)");
    }

    #[test]
    fn cast_printing() {
        let pg = Expr::Cast {
            expr: Box::new(Expr::string("110")),
            type_name: TypeName { name: "Decimal256".into(), params: vec!["45".into()] },
            postgres_style: true,
        };
        assert_eq!(pg.to_string(), "'110'::Decimal256(45)");
        let std = Expr::Cast {
            expr: Box::new(Expr::null()),
            type_name: TypeName::simple("UNSIGNED"),
            postgres_style: false,
        };
        assert_eq!(std.to_string(), "CAST(NULL AS UNSIGNED)");
    }

    #[test]
    fn select_printing() {
        let q = Query {
            distinct: false,
            items: vec![SelectItem::Expr {
                expr: Expr::func("AVG", vec![Expr::Column("c".into())]),
                alias: None,
            }],
            from: Some(TableRef::Named { name: "t".into(), alias: None }),
            where_clause: Some(Expr::Binary {
                left: Box::new(Expr::Column("c".into())),
                op: BinaryOp::Gt,
                right: Box::new(Expr::number("0")),
            }),
            group_by: vec![],
            having: None,
        };
        let stmt = SelectStmt {
            body: SelectBody::Query(Box::new(q)),
            order_by: vec![],
            limit: Some(5),
        };
        assert_eq!(stmt.to_string(), "SELECT AVG(c) FROM t WHERE c > 0 LIMIT 5");
    }

    #[test]
    fn string_literal_quoting() {
        let e = Expr::string("it's");
        assert_eq!(e.to_string(), "'it''s'");
    }

    #[test]
    fn row_and_array_printing() {
        let r = Expr::Row(vec![Expr::number("1"), Expr::number("2")]);
        assert_eq!(r.to_string(), "ROW(1, 2)");
        let a = Expr::ArrayLiteral(vec![]);
        assert_eq!(a.to_string(), "[]");
    }
}
