//! The engine facade: configuration plus the public execution entry points.
//!
//! Statements can be executed in one shot ([`Engine::execute`]) or split
//! into [`Engine::prepare`] + [`Engine::execute_prepared`], the prepared-
//! statement discipline real DBMSs use to amortise frontend cost: parsing
//! and function-name resolution happen exactly once, and every subsequent
//! execution walks the owned AST with allocation-free dispatch.

use crate::catalog::Catalog;
use crate::coverage::Coverage;
use crate::error::{CrashReport, EngineError, ExecOutcome, SqlError};
use crate::executor::Exec;
use crate::fault::FaultSet;
use crate::functions;
use crate::registry::{FunctionRegistry, Limits, SessionState};
use soft_parser::ast::Statement;
use soft_types::cast::CastStrictness;

/// Engine configuration — the knobs a dialect profile sets.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Display name (usually the dialect name).
    pub name: String,
    /// Implicit-cast strictness (PostgreSQL-like strict vs MySQL-like
    /// lenient; §7.3 explains why strictness suppresses boundary bugs).
    pub strictness: CastStrictness,
    /// Resource limits.
    pub limits: Limits,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            name: "soft-engine".into(),
            strictness: CastStrictness::Lenient,
            limits: Limits::default(),
        }
    }
}

/// One entry of a [`Prepared`] statement's dispatch table: a function name
/// as written in the statement, resolved once at prepare time to the
/// registry's interned lowercase key and definition index.
#[derive(Debug, Clone)]
pub(crate) struct DispatchEntry {
    /// The spelling used in the statement (`UPPER`, `uCaSe`, ...).
    pub(crate) spelling: Box<str>,
    /// The registry's stored lowercase key for that spelling — what
    /// coverage records as the "called" name.
    pub(crate) lower: Box<str>,
    /// Index into the registry's definition table.
    pub(crate) index: u32,
}

/// A statement prepared for execution: parsed once, with every resolvable
/// function name case-folded and bound to its registry index up front, so
/// [`Engine::execute_prepared`] does zero heap allocation per function
/// dispatch. Produced by [`Engine::prepare`]; reusable any number of times
/// against the engine that prepared it (or a clone of it — shard engines
/// execute statements prepared by their template).
#[derive(Debug, Clone)]
pub struct Prepared {
    pub(crate) stmt: Statement,
    pub(crate) dispatch: Vec<DispatchEntry>,
}

impl Prepared {
    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }
}

/// The in-memory SQL engine.
///
/// # Examples
///
/// ```
/// use soft_engine::Engine;
///
/// let mut e = Engine::with_default_functions(Default::default());
/// let out = e.execute("SELECT UPPER('abc')");
/// match out {
///     soft_engine::ExecOutcome::Rows(rs) => {
///         assert_eq!(rs.rows[0][0].render(), "ABC");
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
    registry: FunctionRegistry,
    faults: FaultSet,
    catalog: Catalog,
    coverage: Coverage,
    session: SessionState,
    crash_log: Vec<CrashReport>,
}

impl Engine {
    /// Builds an engine from explicit parts (how dialect profiles create
    /// their targets).
    pub fn new(config: EngineConfig, registry: FunctionRegistry, faults: FaultSet) -> Engine {
        Engine {
            config,
            registry,
            faults,
            catalog: Catalog::new(),
            coverage: Coverage::new(),
            session: SessionState::default(),
            crash_log: Vec::new(),
        }
    }

    /// Builds a fault-free engine with the full builtin library and common
    /// aliases — the "reference" configuration.
    pub fn with_default_functions(config: EngineConfig) -> Engine {
        let mut registry = FunctionRegistry::new();
        functions::install_all(&mut registry);
        functions::install_common_aliases(&mut registry);
        Engine::new(config, registry, FaultSet::default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The function registry.
    pub fn registry(&self) -> &FunctionRegistry {
        &self.registry
    }

    /// The active fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Accumulated coverage of the SQL-function component.
    pub fn coverage(&self) -> &Coverage {
        &self.coverage
    }

    /// Crashes observed so far (every `ExecOutcome::Crash` is also logged).
    pub fn crash_log(&self) -> &[CrashReport] {
        &self.crash_log
    }

    /// The catalog (for tests and tools that prepare data directly).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Resets per-database state (tables, sequences, session) but keeps
    /// coverage and the crash log — the paper's workflow: the DBMS restarts
    /// after a crash, the measurement continues.
    pub fn reset_database(&mut self) {
        self.catalog.reset();
        self.session = SessionState::default();
    }

    /// Restores per-database state (catalog + session) from a snapshot
    /// engine, keeping this engine's coverage and crash log. With a
    /// snapshot that already has its preparation statements replayed, this
    /// is the O(clone) equivalent of [`Engine::reset_database`] followed by
    /// re-executing the preparation script — preparation is deterministic
    /// and coverage is set-based, so the observable campaign state is
    /// identical either way.
    pub fn restore_database(&mut self, snapshot: &Engine) {
        self.catalog = snapshot.catalog.clone();
        self.session = snapshot.session.clone();
    }

    /// Prepares one SQL statement: the length gate and the parse — stage 1
    /// of the pipeline — plus one-time case-insensitive resolution of every
    /// function name to its registry index. The returned [`Prepared`] can
    /// be executed repeatedly via [`Engine::execute_prepared`] without ever
    /// touching the lexer or allocating during dispatch.
    ///
    /// Errors are exactly the outcomes [`Engine::execute`] would report
    /// before reaching the executor: `ResourceLimit` for over-long
    /// statements, `Parse` for lex/parse failures.
    pub fn prepare(&self, sql: &str) -> Result<Prepared, SqlError> {
        if sql.len() > self.config.limits.max_statement_bytes {
            return Err(SqlError::ResourceLimit(format!(
                "statement longer than {} bytes",
                self.config.limits.max_statement_bytes
            )));
        }
        // Stage 1: parsing.
        let stmt = soft_parser::parse_statement(sql)
            .map_err(|e| SqlError::Parse(e.to_string()))?;
        Ok(self.prepare_parsed(stmt))
    }

    /// Prepares an already-parsed statement (no length gate, no parse) —
    /// the entry point for callers that own an AST, like the PoC minimiser,
    /// which mutates statement trees directly and should not pay a render →
    /// re-lex round trip per reduction step.
    pub fn prepare_parsed(&self, stmt: Statement) -> Prepared {
        let mut dispatch: Vec<DispatchEntry> = Vec::new();
        soft_parser::visit::for_each_function_name(&stmt, |name| {
            if dispatch.iter().any(|e| &*e.spelling == name) {
                return;
            }
            if let Some((key, idx, _)) = self.registry.resolve_entry(name) {
                dispatch.push(DispatchEntry {
                    spelling: name.into(),
                    lower: key.into(),
                    index: idx as u32,
                });
            }
        });
        Prepared { stmt, dispatch }
    }

    /// Executes a prepared statement — stages 2-3 of the pipeline: the
    /// executor folds optimization (constant handling, union alignment)
    /// into evaluation; fault specs carry the stage their original bug
    /// crashed in. Function calls dispatch through the statement's prepared
    /// table (falling back to the registry's allocation-free lookup), so
    /// the per-call hot path does no heap allocation.
    pub fn execute_prepared(&mut self, prepared: &Prepared) -> ExecOutcome {
        let mut exec = Exec {
            registry: &self.registry,
            faults: &self.faults,
            coverage: &mut self.coverage,
            catalog: &mut self.catalog,
            session: &mut self.session,
            strictness: self.config.strictness,
            limits: self.config.limits,
            memory_used: 0,
            subquery_depth: 0,
            dispatch: &prepared.dispatch,
            feature_buf: String::new(),
        };
        match exec.exec_statement(&prepared.stmt) {
            Ok(outcome) => outcome,
            Err(EngineError::Sql(e)) => ExecOutcome::Error(e),
            Err(EngineError::Crash(c)) => {
                self.crash_log.push(c.clone());
                ExecOutcome::Crash(c)
            }
        }
    }

    /// The structural shape key of a prepared statement, or `None` when it
    /// cannot take the batch path (it reads rows, calls volatile or unknown
    /// functions, aggregates, …). Statements with equal keys can be handed
    /// to [`Engine::execute_batch`] as one group.
    pub fn shape_key(&self, prepared: &Prepared) -> Option<crate::batch::ShapeKey> {
        if self.config.limits.max_rows < 1 {
            return None;
        }
        crate::batch::shape_key(&self.registry, &prepared.stmt)
    }

    /// Executes a group of same-shape prepared statements as one columnar
    /// batch, allocating a fresh scratch arena. See
    /// [`Engine::execute_batch_in`].
    pub fn execute_batch(&mut self, members: &[&Prepared]) -> Option<Vec<ExecOutcome>> {
        let mut arena = crate::batch::BatchArena::new();
        self.execute_batch_in(members, &mut arena)
    }

    /// Executes a group of same-shape prepared statements as one columnar
    /// batch using a caller-provided scratch arena (shard runners keep one
    /// arena alive for the whole campaign).
    ///
    /// Returns `None`, with no side effects, when the group is not
    /// batchable — callers fall back to [`Engine::execute_prepared`] per
    /// member. On `Some`, the outcomes are exactly what
    /// `execute_prepared` would have produced for each member, in member
    /// order, including coverage, fault triggering and crash logging.
    pub fn execute_batch_in(
        &mut self,
        members: &[&Prepared],
        arena: &mut crate::batch::BatchArena,
    ) -> Option<Vec<ExecOutcome>> {
        let dispatch: &[DispatchEntry] = match members.first() {
            Some(m) => &m.dispatch,
            None => return Some(Vec::new()),
        };
        let mut exec = Exec {
            registry: &self.registry,
            faults: &self.faults,
            coverage: &mut self.coverage,
            catalog: &mut self.catalog,
            session: &mut self.session,
            strictness: self.config.strictness,
            limits: self.config.limits,
            memory_used: 0,
            subquery_depth: 0,
            dispatch,
            feature_buf: String::new(),
        };
        let outcomes = crate::batch::execute_batch(&mut exec, members, arena)?;
        for o in &outcomes {
            if let ExecOutcome::Crash(c) = o {
                self.crash_log.push(c.clone());
            }
        }
        Some(outcomes)
    }

    /// Executes one SQL statement: [`Engine::prepare`] composed with
    /// [`Engine::execute_prepared`], with prepare-stage failures surfaced
    /// as the same [`ExecOutcome::Error`]s the pre-split engine reported.
    pub fn execute(&mut self, sql: &str) -> ExecOutcome {
        match self.prepare(sql) {
            Ok(prepared) => self.execute_prepared(&prepared),
            Err(e) => ExecOutcome::Error(e),
        }
    }

    /// Executes a `;`-separated script, stopping at the first crash.
    pub fn execute_script(&mut self, sql: &str) -> Vec<ExecOutcome> {
        let stmts = match soft_parser::parse_script(sql) {
            Ok(s) => s,
            Err(e) => return vec![ExecOutcome::Error(SqlError::Parse(e.to_string()))],
        };
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            let o = self.execute(&stmt.to_string());
            let is_crash = o.is_crash();
            out.push(o);
            if is_crash {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExecOutcome;
    use soft_types::value::Value;

    fn engine() -> Engine {
        Engine::with_default_functions(EngineConfig::default())
    }

    fn scalar(e: &mut Engine, sql: &str) -> Value {
        match e.execute(sql) {
            ExecOutcome::Rows(rs) => rs
                .scalar()
                .unwrap_or_else(|| panic!("{sql}: not a scalar result: {rs:?}"))
                .clone(),
            other => panic!("{sql}: unexpected outcome {other:?}"),
        }
    }

    fn expect_error(e: &mut Engine, sql: &str) -> SqlError {
        match e.execute(sql) {
            ExecOutcome::Error(err) => err,
            other => panic!("{sql}: expected error, got {other:?}"),
        }
    }

    #[test]
    fn literals_and_arithmetic() {
        let mut e = engine();
        assert_eq!(scalar(&mut e, "SELECT 1 + 2 * 3"), Value::Integer(7));
        assert_eq!(scalar(&mut e, "SELECT 5 / 2").render(), "2.5000");
        assert_eq!(scalar(&mut e, "SELECT 1 / 0"), Value::Null);
        assert_eq!(scalar(&mut e, "SELECT -0.99999").render(), "-0.99999");
        assert_eq!(scalar(&mut e, "SELECT 'a' || 'b'").render(), "ab");
    }

    #[test]
    fn big_integer_promotes_to_decimal() {
        let mut e = engine();
        let v = scalar(&mut e, "SELECT 9223372036854775807 + 1");
        assert_eq!(v.render(), "9223372036854775808");
        assert!(matches!(v, Value::Decimal(_)));
    }

    #[test]
    fn string_functions_via_sql() {
        let mut e = engine();
        assert_eq!(scalar(&mut e, "SELECT UPPER('abc')").render(), "ABC");
        assert_eq!(scalar(&mut e, "SELECT REPEAT('ab', 3)").render(), "ababab");
        assert_eq!(scalar(&mut e, "SELECT SUBSTR('hello', 2, 3)").render(), "ell");
        assert_eq!(scalar(&mut e, "SELECT LENGTH('')"), Value::Integer(0));
        assert_eq!(scalar(&mut e, "SELECT CONCAT('a', NULL, 'b')"), Value::Null);
    }

    #[test]
    fn tables_and_aggregates() {
        let mut e = engine();
        assert!(matches!(
            e.execute("CREATE TABLE t (a INTEGER, b TEXT)"),
            ExecOutcome::Ok(_)
        ));
        assert!(matches!(
            e.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (2, 'z')"),
            ExecOutcome::Ok(_)
        ));
        assert_eq!(scalar(&mut e, "SELECT COUNT(*) FROM t"), Value::Integer(3));
        assert_eq!(scalar(&mut e, "SELECT SUM(a) FROM t").render(), "5");
        assert_eq!(scalar(&mut e, "SELECT COUNT(DISTINCT a) FROM t"), Value::Integer(2));
        assert_eq!(scalar(&mut e, "SELECT AVG(a) FROM t").render(), "1.6667");
        match e.execute("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a") {
            ExecOutcome::Rows(rs) => {
                assert_eq!(rs.rows.len(), 2);
                assert_eq!(rs.rows[0][0], Value::Integer(1));
                assert_eq!(rs.rows[0][1], Value::Integer(1));
                assert_eq!(rs.rows[1][1], Value::Integer(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            scalar(&mut e, "SELECT COUNT(*) FROM t WHERE a > 1"),
            Value::Integer(2)
        );
    }

    #[test]
    fn group_by_having() {
        let mut e = engine();
        e.execute("CREATE TABLE g (k INTEGER, v INTEGER)");
        e.execute("INSERT INTO g VALUES (1, 10), (1, 20), (2, 5)");
        match e.execute("SELECT k FROM g GROUP BY k HAVING SUM(v) > 10") {
            ExecOutcome::Rows(rs) => {
                assert_eq!(rs.rows, vec![vec![Value::Integer(1)]]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_table_aggregates() {
        let mut e = engine();
        e.execute("CREATE TABLE empty_t (a INTEGER)");
        assert_eq!(scalar(&mut e, "SELECT COUNT(a) FROM empty_t"), Value::Integer(0));
        assert_eq!(scalar(&mut e, "SELECT SUM(a) FROM empty_t"), Value::Null);
        assert_eq!(scalar(&mut e, "SELECT MAX(a) FROM empty_t"), Value::Null);
    }

    #[test]
    fn union_aligns_types() {
        let mut e = engine();
        match e.execute("SELECT 1 UNION SELECT 'x'") {
            ExecOutcome::Rows(rs) => {
                assert_eq!(rs.rows.len(), 2);
                assert!(matches!(rs.rows[0][0], Value::Text(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        match e.execute("SELECT 1 UNION SELECT 1") {
            ExecOutcome::Rows(rs) => assert_eq!(rs.rows.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        match e.execute("SELECT 1 UNION ALL SELECT 1") {
            ExecOutcome::Rows(rs) => assert_eq!(rs.rows.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subqueries() {
        let mut e = engine();
        assert_eq!(scalar(&mut e, "SELECT (SELECT 42)"), Value::Integer(42));
        assert_eq!(
            scalar(&mut e, "SELECT 1 + (SELECT 2 UNION SELECT 2)"),
            Value::Integer(3)
        );
        e.execute("CREATE TABLE s (a INTEGER)");
        assert_eq!(scalar(&mut e, "SELECT (SELECT MAX(a) FROM s)"), Value::Null);
        assert_eq!(scalar(&mut e, "SELECT EXISTS (SELECT 1)").render(), "1");
        let err = expect_error(&mut e, "SELECT (SELECT 1 UNION SELECT 2)");
        assert!(matches!(err, SqlError::Semantic(_)), "{err}");
    }

    #[test]
    fn from_subquery() {
        let mut e = engine();
        assert_eq!(
            scalar(&mut e, "SELECT x + 1 FROM (SELECT 41 AS x) sub"),
            Value::Integer(42)
        );
        // The MDEV-11030 PoC shape runs cleanly on the guarded engine.
        assert_eq!(
            scalar(&mut e, "SELECT * FROM (SELECT IFNULL(CONVERT(NULL, UNSIGNED), NULL)) sq"),
            Value::Null
        );
    }

    #[test]
    fn casts_both_syntaxes() {
        let mut e = engine();
        assert_eq!(scalar(&mut e, "SELECT CAST('12' AS INTEGER)"), Value::Integer(12));
        assert_eq!(scalar(&mut e, "SELECT '12'::INTEGER"), Value::Integer(12));
        assert_eq!(scalar(&mut e, "SELECT CAST(NULL AS UNSIGNED)"), Value::Null);
        assert_eq!(scalar(&mut e, "SELECT '110'::Decimal256(45)").render(), "110");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut e = engine();
        assert!(matches!(expect_error(&mut e, "SELECT"), SqlError::Parse(_)));
        assert!(matches!(expect_error(&mut e, "SELECT unknown_col"), SqlError::Semantic(_)));
        assert!(matches!(expect_error(&mut e, "SELECT NO_SUCH_FN(1)"), SqlError::Semantic(_)));
        assert!(matches!(expect_error(&mut e, "SELECT UPPER()"), SqlError::Semantic(_)));
        assert!(matches!(
            expect_error(&mut e, "SELECT * FROM missing"),
            SqlError::Semantic(_)
        ));
        assert!(matches!(
            expect_error(&mut e, "SELECT SUM(a)"),
            SqlError::Semantic(_)
        ));
    }

    #[test]
    fn repeat_resource_limit_is_the_fp_class() {
        let mut e = engine();
        let err = expect_error(&mut e, "SELECT REPEAT('a', 9999999999)");
        assert!(matches!(err, SqlError::ResourceLimit(_)), "{err}");
        // Not recorded as a crash.
        assert!(e.crash_log().is_empty());
    }

    #[test]
    fn coverage_accumulates() {
        let mut e = engine();
        e.execute("SELECT UPPER('a')");
        let after_one = e.coverage().branches_covered();
        assert!(e.coverage().functions_triggered() >= 1);
        e.execute("SELECT UPPER(NULL)");
        assert!(
            e.coverage().branches_covered() > after_one,
            "a NULL boundary argument must cover new branches"
        );
    }

    #[test]
    fn order_by_and_limit() {
        let mut e = engine();
        e.execute("CREATE TABLE o (a INTEGER)");
        e.execute("INSERT INTO o VALUES (3), (1), (2)");
        match e.execute("SELECT a FROM o ORDER BY a DESC LIMIT 2") {
            ExecOutcome::Rows(rs) => {
                assert_eq!(rs.rows, vec![vec![Value::Integer(3)], vec![Value::Integer(2)]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match e.execute("SELECT a FROM o ORDER BY 1") {
            ExecOutcome::Rows(rs) => assert_eq!(rs.rows[0][0], Value::Integer(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_and_logic() {
        let mut e = engine();
        assert_eq!(
            scalar(&mut e, "SELECT CASE WHEN 1 = 1 THEN 'y' ELSE 'n' END").render(),
            "y"
        );
        assert_eq!(scalar(&mut e, "SELECT CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END").render(), "b");
        assert_eq!(scalar(&mut e, "SELECT NULL AND TRUE"), Value::Null);
        assert_eq!(scalar(&mut e, "SELECT NULL OR TRUE").render(), "1");
        assert_eq!(scalar(&mut e, "SELECT 1 BETWEEN 0 AND 2").render(), "1");
        assert_eq!(scalar(&mut e, "SELECT 3 IN (1, 2)").render(), "0");
        assert_eq!(scalar(&mut e, "SELECT 3 IN (1, NULL)"), Value::Null);
        assert_eq!(scalar(&mut e, "SELECT 'abc' LIKE 'a%'").render(), "1");
        assert_eq!(scalar(&mut e, "SELECT 'abc' LIKE 'a_c'").render(), "1");
    }

    #[test]
    fn paper_pocs_run_clean_on_guarded_engine() {
        // On the fault-free reference engine every paper PoC must complete
        // without a crash outcome (errors are fine — crashes are not).
        let mut e = engine();
        for sql in [
            "SELECT toDecimalString('110'::Decimal256(45), 2)",
            "SELECT FORMAT('0', 50, 'de_DE')",
            "SELECT COLUMN_JSON(COLUMN_CREATE('x', 123456789012345678901234567890123456789012346789))",
            "SELECT * FROM (SELECT IFNULL(CONVERT(NULL, UNSIGNED), NULL)) sq",
            "SELECT REPEAT('[', 1000)::json",
            "SELECT INTERVAL(ROW(1,1), ROW(1,2))",
            "SELECT AVG(1.299999999999999999999999999999999999999999999999999999999999999999)",
            "SELECT CONTAINS('x', 'x', *)",
            "SELECT JSONB_OBJECT_AGG(DISTINCT 'a', 'abc')",
            "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')",
            "SELECT ST_ASTEXT(BOUNDARY(INET6_ATON('255.255.255.255')))",
            "SELECT UpdateXML('<a><c></c></a>', '/a/c[1]', '<c><b></b></c>')",
        ] {
            let out = e.execute(sql);
            assert!(!out.is_crash(), "{sql}: guarded engine crashed: {out:?}");
        }
    }

    #[test]
    fn aggregate_without_rows_or_from() {
        let mut e = engine();
        assert_eq!(scalar(&mut e, "SELECT COUNT(*)"), Value::Integer(1));
        let v = scalar(
            &mut e,
            "SELECT AVG(1.299999999999999999999999999999999999999999999999999999999999999999)",
        );
        assert!(matches!(v, Value::Decimal(_) | Value::Float(_)));
    }

    #[test]
    fn json_chain() {
        let mut e = engine();
        assert_eq!(scalar(&mut e, "SELECT JSON_LENGTH('[1,2,3]')"), Value::Integer(3));
        assert_eq!(
            scalar(&mut e, "SELECT JSON_LENGTH('{\"a\":1}', '$.a')"),
            Value::Integer(1)
        );
        assert_eq!(scalar(&mut e, "SELECT JSON_VALID('{bad')").render(), "0");
    }

    #[test]
    fn spatial_chain_listing11_guarded() {
        let mut e = engine();
        // INET blob into a geometry function: type error, not a crash.
        let err = expect_error(
            &mut e,
            "SELECT ST_ASTEXT(BOUNDARY(INET6_ATON('255.255.255.255')))",
        );
        assert!(matches!(err, SqlError::TypeError(_)), "{err}");
    }

    #[test]
    fn strict_engine_rejects_implicit_coercion() {
        let mut e = Engine::with_default_functions(EngineConfig {
            name: "pg-like".into(),
            strictness: CastStrictness::Strict,
            limits: Limits::default(),
        });
        // Strict dialects reject UPPER(123): no implicit int → text cast.
        let err = expect_error(&mut e, "SELECT UPPER(123)");
        assert!(matches!(err, SqlError::TypeError(_)), "{err}");
        // Explicit cast is fine.
        assert_eq!(scalar(&mut e, "SELECT UPPER(CAST(123 AS TEXT))").render(), "123");
    }

    #[test]
    fn script_execution() {
        let mut e = engine();
        let outs = e.execute_script(
            "CREATE TABLE s1 (a INT); INSERT INTO s1 VALUES (5); SELECT a FROM s1;",
        );
        assert_eq!(outs.len(), 3);
        assert!(matches!(outs[2], ExecOutcome::Rows(_)));
    }

    #[test]
    fn prepared_execution_matches_one_shot_execution() {
        for sql in [
            "SELECT UPPER('abc')",
            "SELECT uPpEr(LOWER('AbC'))",
            "SELECT REPEAT('a', 9999999999)",
            "SELECT NO_SUCH_FN(1)",
            "SELECT 1 +",
            "SELECT (SELECT MAX(x) FROM (SELECT 1 AS x) s)",
        ] {
            let mut one_shot = engine();
            let mut split = engine();
            let expected = one_shot.execute(sql);
            let got = match split.prepare(sql) {
                Ok(p) => split.execute_prepared(&p),
                Err(e) => ExecOutcome::Error(e),
            };
            assert_eq!(got, expected, "{sql}: prepared path diverged");
        }
    }

    #[test]
    fn prepared_statements_are_reusable() {
        let mut e = engine();
        let p = e.prepare("SELECT LENGTH('abcd')").expect("parses");
        for _ in 0..3 {
            match e.execute_prepared(&p) {
                ExecOutcome::Rows(rs) => assert_eq!(rs.scalar(), Some(&Value::Integer(4))),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn prepare_reports_the_pre_executor_outcomes() {
        let e = engine();
        assert!(matches!(e.prepare("SELECT"), Err(SqlError::Parse(_))));
        let long = format!("SELECT '{}'", "a".repeat(2 << 20));
        assert!(matches!(e.prepare(&long), Err(SqlError::ResourceLimit(_))));
    }

    #[test]
    fn restore_database_equals_reset_plus_prep_replay() {
        let prep = [
            "CREATE TABLE snap (a INTEGER)",
            "INSERT INTO snap VALUES (1), (2)",
        ];
        let mut template = engine();
        for sql in prep {
            let _ = template.execute(sql);
        }
        // Path A: the old recovery — reset, then replay preparation.
        let mut a = template.clone();
        let _ = a.execute("CREATE TABLE scratch (x INTEGER)");
        let _ = a.execute("SELECT UPPER('boundary')");
        a.reset_database();
        for sql in prep {
            let _ = a.execute(sql);
        }
        // Path B: snapshot restore from the prepared template.
        let mut b = template.clone();
        let _ = b.execute("CREATE TABLE scratch (x INTEGER)");
        let _ = b.execute("SELECT UPPER('boundary')");
        b.restore_database(&template);
        // Same catalog state (scratch gone, snap back), same coverage.
        assert!(a.catalog_mut().table("scratch").is_none());
        assert!(b.catalog_mut().table("scratch").is_none());
        assert_eq!(a.execute("SELECT COUNT(*) FROM snap"), b.execute("SELECT COUNT(*) FROM snap"));
        assert_eq!(a.coverage().branches_covered(), b.coverage().branches_covered());
        assert_eq!(a.coverage().functions_triggered(), b.coverage().functions_triggered());
    }

    #[test]
    fn reset_database_keeps_coverage() {
        let mut e = engine();
        e.execute("CREATE TABLE r1 (a INT)");
        e.execute("SELECT UPPER('x')");
        let cov = e.coverage().branches_covered();
        e.reset_database();
        assert!(e.catalog_mut().table("r1").is_none());
        assert_eq!(e.coverage().branches_covered(), cov);
    }
}
