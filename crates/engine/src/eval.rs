//! Provenance-carrying evaluated values.
//!
//! §5 of the paper divides boundary arguments by *where the value came from*:
//! literal values, type-casting results, or nested-function returns. The
//! evaluator therefore tags every value with its [`Provenance`], and the
//! fault corpus triggers on (value, provenance) pairs — which is exactly why
//! the P2.x/P3.x patterns can reach faults that random literals cannot.

use soft_types::value::{DataType, Value};

/// Where an evaluated value came from.
#[derive(Debug, Clone, PartialEq)]
pub enum Provenance {
    /// A literal written in the statement.
    Literal,
    /// A table column.
    Column,
    /// The `*` pseudo-argument.
    Star,
    /// A cast applied to an inner value.
    Cast {
        /// The type the operand had before the cast.
        from: DataType,
        /// True for user-written `CAST`/`::`; false for engine coercions
        /// (argument coercion, `UNION` column alignment).
        explicit: bool,
        /// Provenance of the operand.
        inner: Box<Provenance>,
    },
    /// The return value of a scalar function.
    FunctionReturn {
        /// Canonical (lowercase) function name.
        name: String,
    },
    /// The result of an aggregate.
    AggregateReturn {
        /// Canonical (lowercase) function name.
        name: String,
    },
    /// A scalar subquery result.
    Subquery {
        /// Provenance of the projected cell (if derivable).
        inner: Box<Provenance>,
    },
    /// An operator (`+`, `||`, `CASE`, ...) combined other values.
    Operator,
    /// A constructed row/array/map literal.
    Constructor,
}

impl Provenance {
    /// True if the value passed through any cast (explicit or implicit),
    /// looking through subquery wrappers.
    pub fn via_cast(&self, explicit_only: Option<bool>) -> bool {
        match self {
            Provenance::Cast { explicit, .. } => match explicit_only {
                None => true,
                Some(want) => *explicit == want,
            },
            Provenance::Subquery { inner } => inner.via_cast(explicit_only),
            _ => false,
        }
    }

    /// The source type of the outermost cast, if any.
    pub fn cast_source(&self) -> Option<DataType> {
        match self {
            Provenance::Cast { from, .. } => Some(*from),
            Provenance::Subquery { inner } => inner.cast_source(),
            _ => None,
        }
    }

    /// True if the value is (possibly through casts/subqueries) the return
    /// of a function; `name` filters to a specific function when given.
    pub fn from_function(&self, name: Option<&str>) -> bool {
        match self {
            Provenance::FunctionReturn { name: n } | Provenance::AggregateReturn { name: n } => {
                name.is_none_or(|want| n.eq_ignore_ascii_case(want))
            }
            Provenance::Cast { inner, .. } | Provenance::Subquery { inner } => {
                inner.from_function(name)
            }
            _ => false,
        }
    }

    /// True if this value is a plain literal (no cast, no function).
    pub fn is_literal(&self) -> bool {
        matches!(self, Provenance::Literal | Provenance::Star)
    }

    /// True if the value came out of a subquery.
    pub fn via_subquery(&self) -> bool {
        matches!(self, Provenance::Subquery { .. })
    }
}

/// A value plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluated {
    /// The value.
    pub value: Value,
    /// Where it came from.
    pub provenance: Provenance,
}

impl Evaluated {
    /// A literal-provenance value.
    pub fn literal(value: Value) -> Evaluated {
        Evaluated { value, provenance: Provenance::Literal }
    }

    /// A column-provenance value.
    pub fn column(value: Value) -> Evaluated {
        Evaluated { value, provenance: Provenance::Column }
    }

    /// A function-return value.
    pub fn function_return(value: Value, name: &str) -> Evaluated {
        Evaluated {
            value,
            provenance: Provenance::FunctionReturn { name: name.to_ascii_lowercase() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_matching_looks_through_subquery() {
        let p = Provenance::Subquery {
            inner: Box::new(Provenance::Cast {
                from: DataType::Null,
                explicit: false,
                inner: Box::new(Provenance::Literal),
            }),
        };
        assert!(p.via_cast(None));
        assert!(p.via_cast(Some(false)));
        assert!(!p.via_cast(Some(true)));
        assert_eq!(p.cast_source(), Some(DataType::Null));
    }

    #[test]
    fn function_matching_is_name_insensitive() {
        let p = Provenance::FunctionReturn { name: "inet6_aton".into() };
        assert!(p.from_function(None));
        assert!(p.from_function(Some("INET6_ATON")));
        assert!(!p.from_function(Some("repeat")));
    }

    #[test]
    fn function_through_cast() {
        let p = Provenance::Cast {
            from: DataType::Binary,
            explicit: false,
            inner: Box::new(Provenance::FunctionReturn { name: "inet6_aton".into() }),
        };
        assert!(p.from_function(Some("inet6_aton")));
    }

    #[test]
    fn literal_classification() {
        assert!(Provenance::Literal.is_literal());
        assert!(Provenance::Star.is_literal());
        assert!(!Provenance::Operator.is_literal());
    }
}
