//! The function registry and the per-call execution context.

use crate::coverage::Coverage;
use crate::error::{EngineError, SqlError};
use crate::eval::{Evaluated, Provenance};
use crate::fault::FaultSet;
use soft_types::cast::{cast, CastLimits, CastMode, CastStrictness};
use soft_types::category::FunctionCategory;
use soft_types::datetime::{Date, DateTime, Interval, Time};
use soft_types::decimal::Decimal;
use soft_types::geometry::Geometry;
use soft_types::json::JsonValue;
use soft_types::value::{DataType, Value};
use soft_types::xml::XmlDocument;
use std::collections::BTreeMap;
use std::collections::HashMap;

/// A scalar function implementation.
pub type ScalarImpl = fn(&mut FnCtx<'_>, &[Evaluated]) -> Result<Value, EngineError>;

/// An aggregate implementation: receives per-row evaluated argument vectors.
pub type AggregateImpl =
    fn(&mut FnCtx<'_>, &[Vec<Evaluated>], bool) -> Result<Value, EngineError>;

/// The implementation of a built-in.
#[derive(Clone, Copy)]
pub enum FunctionImpl {
    /// Row-at-a-time scalar.
    Scalar(ScalarImpl),
    /// Group-at-a-time aggregate.
    Aggregate(AggregateImpl),
}

impl std::fmt::Debug for FunctionImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FunctionImpl::Scalar(_) => write!(f, "Scalar(..)"),
            FunctionImpl::Aggregate(_) => write!(f, "Aggregate(..)"),
        }
    }
}

/// A registered built-in function.
#[derive(Debug, Clone)]
pub struct FunctionDef {
    /// Canonical lowercase name.
    pub name: &'static str,
    /// Category (Figure 1 taxonomy).
    pub category: FunctionCategory,
    /// Minimum argument count.
    pub min_args: usize,
    /// Maximum argument count (`None` = variadic).
    pub max_args: Option<usize>,
    /// The implementation.
    pub implementation: FunctionImpl,
}

impl FunctionDef {
    /// True for aggregates.
    pub fn is_aggregate(&self) -> bool {
        matches!(self.implementation, FunctionImpl::Aggregate(_))
    }
}

/// The set of functions a dialect exposes. Aliases let a dialect expose the
/// same implementation under several spellings (`UPPER`/`UCASE`, ClickHouse
/// camelCase, ...), which is also how the per-dialect function counts of
/// Table 5 arise.
#[derive(Debug, Clone, Default)]
pub struct FunctionRegistry {
    defs: Vec<FunctionDef>,
    by_name: HashMap<String, usize>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Registers a definition under its canonical name.
    ///
    /// # Panics
    ///
    /// Panics if the canonical name is already taken — duplicate
    /// registration is a programming error in a dialect definition.
    pub fn register(&mut self, def: FunctionDef) {
        let key = def.name.to_ascii_lowercase();
        assert!(
            !self.by_name.contains_key(&key),
            "duplicate function registration: {key}"
        );
        self.defs.push(def);
        self.by_name.insert(key, self.defs.len() - 1);
    }

    /// Registers an alias for an existing canonical name. Unknown canonical
    /// names are ignored (a dialect may alias a function it did not adopt).
    pub fn alias(&mut self, alias: &str, canonical: &str) {
        let alias_key = alias.to_ascii_lowercase();
        if self.by_name.contains_key(&alias_key) {
            return;
        }
        if let Some(&idx) = self.by_name.get(&canonical.to_ascii_lowercase()) {
            self.by_name.insert(alias_key, idx);
        }
    }

    /// Resolves a (case-insensitive) name to its definition.
    pub fn resolve(&self, name: &str) -> Option<&FunctionDef> {
        self.resolve_entry(name).map(|(_, _, def)| def)
    }

    /// Resolves a (case-insensitive) name to its interned registry entry:
    /// the map's stored lowercase key, the definition's index (stable for
    /// the registry's lifetime — registration is append-only), and the
    /// definition itself.
    ///
    /// The case fold happens in a stack buffer, so the lookup allocates
    /// nothing for names up to 64 bytes (every builtin and alias is far
    /// shorter); the returned `&str` is the registry's own key, which lets
    /// callers keep an interned lowercase spelling without re-folding.
    pub fn resolve_entry(&self, name: &str) -> Option<(&str, usize, &FunctionDef)> {
        let mut buf = [0u8; 64];
        if name.len() <= buf.len() {
            let folded = &mut buf[..name.len()];
            folded.copy_from_slice(name.as_bytes());
            folded.make_ascii_lowercase();
            // ASCII folding rewrites only bytes < 0x80, so the buffer is
            // still the valid UTF-8 of the lowercased name.
            let key = std::str::from_utf8(folded).expect("ascii fold preserves utf-8");
            self.entry_for_key(key)
        } else {
            self.entry_for_key(&name.to_ascii_lowercase())
        }
    }

    fn entry_for_key(&self, key: &str) -> Option<(&str, usize, &FunctionDef)> {
        let (stored, &idx) = self.by_name.get_key_value(key)?;
        Some((stored.as_str(), idx, &self.defs[idx]))
    }

    /// The definition at a [`FunctionRegistry::resolve_entry`] index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` did not come from this registry's `resolve_entry`.
    pub fn def_at(&self, idx: usize) -> &FunctionDef {
        &self.defs[idx]
    }

    /// Removes a name (canonical or alias) from the registry, so dialects
    /// can opt out of functions.
    pub fn remove(&mut self, name: &str) {
        self.by_name.remove(&name.to_ascii_lowercase());
    }

    /// All resolvable names (canonical + aliases), sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.by_name.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of resolvable names.
    pub fn name_count(&self) -> usize {
        self.by_name.len()
    }

    /// All definitions (deduplicated, canonical order).
    pub fn defs(&self) -> &[FunctionDef] {
        &self.defs
    }
}

/// Engine resource limits.
///
/// `max_repeat_count` is the knob behind the paper's seven false positives:
/// `REPEAT('a', 9999999999)` is killed with a resource-limit *error*, not a
/// crash.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum statement length in bytes.
    pub max_statement_bytes: usize,
    /// Per-statement memory budget (estimated) in bytes.
    pub max_memory_bytes: usize,
    /// Largest accepted repetition count for `REPEAT`/`SPACE`/`LPAD`-style
    /// expansion.
    pub max_repeat_count: i64,
    /// Maximum rows a statement may produce.
    pub max_rows: usize,
    /// Maximum decimal digits (see [`soft_types::decimal::MAX_DIGITS`]).
    pub max_decimal_digits: usize,
    /// Maximum JSON/XML nesting accepted by parsers.
    pub max_nesting_depth: usize,
    /// Digit count beyond which number formatting switches to scientific
    /// notation (MariaDB's `String::set_real` uses 31 — the MDEV-23415
    /// boundary).
    pub scientific_threshold: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_statement_bytes: 1 << 20,
            max_memory_bytes: 64 << 20,
            max_repeat_count: 1_000_000,
            max_rows: 100_000,
            max_decimal_digits: soft_types::decimal::MAX_DIGITS,
            max_nesting_depth: 64,
            scientific_threshold: 31,
        }
    }
}

/// Deterministic per-connection session state.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// LCG state for `RAND()`.
    pub rand_state: u64,
    /// Counter backing `UUID()`.
    pub uuid_counter: u64,
    /// `LAST_INSERT_ID()`.
    pub last_insert_id: i64,
    /// Sequences (`NEXTVAL` family).
    pub sequences: BTreeMap<String, i64>,
    /// The fixed "current" timestamp (reproducibility: no wall clock).
    pub now: DateTime,
}

impl Default for SessionState {
    fn default() -> Self {
        SessionState {
            rand_state: 0x5DEECE66D,
            uuid_counter: 0,
            last_insert_id: 0,
            sequences: BTreeMap::new(),
            now: DateTime::new(
                Date::new(2025, 3, 30).expect("valid fixed date"),
                Time::new(12, 0, 0, 0).expect("valid fixed time"),
            ),
        }
    }
}

impl SessionState {
    /// Next deterministic pseudo-random f64 in [0, 1).
    pub fn next_rand(&mut self) -> f64 {
        // A 64-bit LCG (Knuth's MMIX constants).
        self.rand_state = self
            .rand_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.rand_state >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The per-call execution context handed to built-in implementations.
pub struct FnCtx<'a> {
    /// Canonical name of the function being executed.
    pub name: &'a str,
    /// Dialect casting strictness.
    pub strictness: CastStrictness,
    /// Engine limits.
    pub limits: &'a Limits,
    /// Coverage accumulator.
    pub coverage: &'a mut Coverage,
    /// Active fault set (cast-site faults are reachable from inside
    /// function implementations through [`FnCtx::cast`]).
    pub faults: &'a FaultSet,
    /// Session state.
    pub session: &'a mut SessionState,
    /// Memory accounting for this statement.
    pub memory_used: &'a mut usize,
}

impl<'a> FnCtx<'a> {
    /// Records an explicit decision-point branch.
    pub fn branch(&mut self, site: &str) {
        self.coverage.record_branch(self.name, site);
    }

    /// Cast limits derived from the engine limits.
    pub fn cast_limits(&self) -> CastLimits {
        CastLimits {
            max_decimal_digits: self.limits.max_decimal_digits,
            max_nesting_depth: self.limits.max_nesting_depth,
        }
    }

    /// Performs a cast through the engine's cast site (coverage + faults).
    pub fn cast(
        &mut self,
        operand: &Evaluated,
        to: DataType,
        explicit: bool,
    ) -> Result<Evaluated, EngineError> {
        perform_cast(
            operand,
            to,
            explicit,
            self.strictness,
            &self.cast_limits(),
            self.coverage,
            self.faults,
        )
    }

    /// Charges a produced value against the statement memory budget.
    pub fn charge(&mut self, v: &Value) -> Result<(), EngineError> {
        *self.memory_used += v.size_estimate();
        if *self.memory_used > self.limits.max_memory_bytes {
            return Err(EngineError::Sql(SqlError::ResourceLimit(format!(
                "statement memory budget ({} bytes) exceeded",
                self.limits.max_memory_bytes
            ))));
        }
        Ok(())
    }

    /// Validates a repetition count against the resource limit, returning it
    /// as usize. Negative counts yield 0 (MySQL semantics).
    pub fn repeat_count(&mut self, n: i64) -> Result<usize, EngineError> {
        if n > self.limits.max_repeat_count {
            return Err(EngineError::Sql(SqlError::ResourceLimit(format!(
                "repetition count {n} exceeds limit {}",
                self.limits.max_repeat_count
            ))));
        }
        Ok(n.max(0) as usize)
    }
}

/// The engine's single cast chokepoint: every conversion — user-written or
/// engine-inserted — flows through here, so cast-site faults and coverage
/// see all of them.
pub fn perform_cast(
    operand: &Evaluated,
    to: DataType,
    explicit: bool,
    strictness: CastStrictness,
    limits: &CastLimits,
    coverage: &mut Coverage,
    faults: &FaultSet,
) -> Result<Evaluated, EngineError> {
    let from = operand.value.data_type();
    coverage.record_feature("cast", &format!("{from}->{to}"));
    if let Some(fault) = faults.check_cast(to, !explicit, operand) {
        return Err(EngineError::Crash(fault.crash(None)));
    }
    let mode = if explicit { CastMode::Explicit } else { CastMode::Implicit };
    let value = cast(&operand.value, to, mode, strictness, limits)
        .map_err(|e| EngineError::Sql(SqlError::TypeError(e.to_string())))?;
    Ok(Evaluated {
        value,
        provenance: Provenance::Cast {
            from,
            explicit,
            inner: Box::new(operand.provenance.clone()),
        },
    })
}

// ---- argument coercion helpers used by every builtin ----

fn arg(args: &[Evaluated], i: usize) -> Result<&Evaluated, EngineError> {
    args.get(i).ok_or_else(|| {
        EngineError::Sql(SqlError::Semantic(format!("missing argument {i}")))
    })
}

fn reject_star(ctx: &FnCtx<'_>, e: &Evaluated) -> Result<(), EngineError> {
    if matches!(e.value, Value::Star) {
        return Err(EngineError::Sql(SqlError::TypeError(format!(
            "'*' is not a valid argument to {}",
            ctx.name
        ))));
    }
    Ok(())
}

/// Coerces argument `i` to text; NULL propagates as `None`.
pub fn want_text(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<String>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Text, false)?.value {
        Value::Text(s) => Ok(Some(s)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected text, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to an integer; NULL propagates as `None`.
pub fn want_int(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<i64>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Integer, false)?.value {
        Value::Integer(v) => Ok(Some(v)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected integer, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to a float; NULL propagates as `None`.
pub fn want_f64(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<f64>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Float, false)?.value {
        Value::Float(v) => Ok(Some(v)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected double, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to a decimal; NULL propagates as `None`.
pub fn want_decimal(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<Decimal>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Decimal, false)?.value {
        Value::Decimal(d) => Ok(Some(d)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected decimal, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to JSON; NULL propagates as `None`.
pub fn want_json(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<JsonValue>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Json, false)?.value {
        Value::Json(j) => Ok(Some(j)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected JSON, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to XML; NULL propagates as `None`.
pub fn want_xml(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<XmlDocument>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Xml, false)?.value {
        Value::Xml(x) => Ok(Some(x)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected XML, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to a geometry; NULL propagates as `None`.
pub fn want_geometry(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<Geometry>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Geometry, false)?.value {
        Value::Geometry(g) => Ok(Some(g)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected geometry, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to binary; NULL propagates as `None`.
pub fn want_binary(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<Vec<u8>>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Binary, false)?.value {
        Value::Binary(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected binary, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to a date; NULL propagates as `None`.
pub fn want_date(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<Date>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match ctx.cast(e, DataType::Date, false)?.value {
        Value::Date(d) => Ok(Some(d)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected date, got {}",
            other.data_type()
        )))),
    }
}

/// Coerces argument `i` to a datetime; NULL propagates as `None`.
pub fn want_datetime(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<DateTime>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    if e.value.is_null() {
        return Ok(None);
    }
    match &e.value {
        Value::Date(d) => return Ok(Some(DateTime::new(*d, Time::MIDNIGHT))),
        Value::DateTime(dt) => return Ok(Some(*dt)),
        _ => {}
    }
    match ctx.cast(e, DataType::DateTime, false)?.value {
        Value::DateTime(dt) => Ok(Some(dt)),
        Value::Null => Ok(None),
        other => Err(EngineError::Sql(SqlError::TypeError(format!(
            "expected datetime, got {}",
            other.data_type()
        )))),
    }
}

/// Extracts argument `i` as an interval (integers become day intervals).
pub fn want_interval(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<Interval>, EngineError> {
    let e = arg(args, i)?;
    reject_star(ctx, e)?;
    match &e.value {
        Value::Null => Ok(None),
        Value::Interval(iv) => Ok(Some(*iv)),
        Value::Integer(n) => Ok(Some(Interval::days(*n))),
        _ => match want_int(ctx, args, i)? {
            Some(n) => Ok(Some(Interval::days(n))),
            None => Ok(None),
        },
    }
}

/// A shorthand for `Err(Runtime(..))`.
pub fn runtime_err<T>(msg: impl Into<String>) -> Result<T, EngineError> {
    Err(EngineError::Sql(SqlError::Runtime(msg.into())))
}

/// A shorthand for `Err(TypeError(..))`.
pub fn type_err<T>(msg: impl Into<String>) -> Result<T, EngineError> {
    Err(EngineError::Sql(SqlError::TypeError(msg.into())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_scalar(_: &mut FnCtx<'_>, _: &[Evaluated]) -> Result<Value, EngineError> {
        Ok(Value::Null)
    }

    fn def(name: &'static str) -> FunctionDef {
        FunctionDef {
            name,
            category: FunctionCategory::String,
            min_args: 1,
            max_args: Some(1),
            implementation: FunctionImpl::Scalar(dummy_scalar),
        }
    }

    #[test]
    fn registry_resolution_and_aliases() {
        let mut r = FunctionRegistry::new();
        r.register(def("upper"));
        r.alias("ucase", "upper");
        r.alias("ghost", "missing"); // silently ignored
        assert!(r.resolve("UPPER").is_some());
        assert!(r.resolve("Ucase").is_some());
        assert!(r.resolve("ghost").is_none());
        assert_eq!(r.name_count(), 2);
    }

    #[test]
    fn resolve_entry_interns_the_stored_key() {
        let mut r = FunctionRegistry::new();
        r.register(def("upper"));
        r.alias("ucase", "upper");
        let (key, idx, d) = r.resolve_entry("UpPeR").expect("resolves");
        assert_eq!(key, "upper");
        assert_eq!(d.name, "upper");
        assert!(std::ptr::eq(d, r.def_at(idx)));
        // Aliases intern their own lowercase spelling but share the index.
        let (alias_key, alias_idx, _) = r.resolve_entry("UCase").expect("resolves");
        assert_eq!(alias_key, "ucase");
        assert_eq!(alias_idx, idx);
        // Names beyond the stack buffer take the heap fallback path.
        let long = "X".repeat(200);
        assert!(r.resolve_entry(&long).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate function registration")]
    fn duplicate_registration_panics() {
        let mut r = FunctionRegistry::new();
        r.register(def("f"));
        r.register(def("f"));
    }

    #[test]
    fn removal() {
        let mut r = FunctionRegistry::new();
        r.register(def("f"));
        r.alias("g", "f");
        r.remove("f");
        assert!(r.resolve("f").is_none());
        assert!(r.resolve("g").is_some());
    }

    #[test]
    fn session_rand_is_deterministic() {
        let mut a = SessionState::default();
        let mut b = SessionState::default();
        let xs: Vec<f64> = (0..5).map(|_| a.next_rand()).collect();
        let ys: Vec<f64> = (0..5).map(|_| b.next_rand()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        assert_ne!(xs[0], xs[1]);
    }

    fn mk_ctx<'a>(
        cov: &'a mut Coverage,
        faults: &'a FaultSet,
        session: &'a mut SessionState,
        limits: &'a Limits,
        mem: &'a mut usize,
    ) -> FnCtx<'a> {
        FnCtx {
            name: "test",
            strictness: CastStrictness::Lenient,
            limits,
            coverage: cov,
            faults,
            session,
            memory_used: mem,
        }
    }

    #[test]
    fn want_helpers_coerce_and_propagate_null() {
        let mut cov = Coverage::new();
        let faults = FaultSet::default();
        let mut session = SessionState::default();
        let limits = Limits::default();
        let mut mem = 0usize;
        let mut ctx = mk_ctx(&mut cov, &faults, &mut session, &limits, &mut mem);
        let args = vec![
            Evaluated::literal(Value::Text("42".into())),
            Evaluated::literal(Value::Null),
            Evaluated::literal(Value::Star),
        ];
        assert_eq!(want_int(&mut ctx, &args, 0).unwrap(), Some(42));
        assert_eq!(want_int(&mut ctx, &args, 1).unwrap(), None);
        assert!(want_int(&mut ctx, &args, 2).is_err());
        assert_eq!(want_text(&mut ctx, &args, 0).unwrap(), Some("42".into()));
    }

    #[test]
    fn repeat_count_limit_is_resource_error() {
        let mut cov = Coverage::new();
        let faults = FaultSet::default();
        let mut session = SessionState::default();
        let limits = Limits::default();
        let mut mem = 0usize;
        let mut ctx = mk_ctx(&mut cov, &faults, &mut session, &limits, &mut mem);
        assert_eq!(ctx.repeat_count(-5).unwrap(), 0);
        assert_eq!(ctx.repeat_count(10).unwrap(), 10);
        match ctx.repeat_count(9_999_999_999) {
            Err(EngineError::Sql(SqlError::ResourceLimit(_))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn memory_budget() {
        let mut cov = Coverage::new();
        let faults = FaultSet::default();
        let mut session = SessionState::default();
        let limits = Limits { max_memory_bytes: 1000, ..Limits::default() };
        let mut mem = 0usize;
        let mut ctx = mk_ctx(&mut cov, &faults, &mut session, &limits, &mut mem);
        let big = Value::Text("a".repeat(2000));
        match ctx.charge(&big) {
            Err(EngineError::Sql(SqlError::ResourceLimit(_))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
