//! The fault-injection model.
//!
//! The paper found 132 real memory-safety bugs in seven DBMSs (Table 4).
//! Those DBMSs are not part of this reproduction, so each bug is modelled as
//! a [`FaultSpec`]: a predicate over the (value, provenance) pairs reaching a
//! fault site — a function invocation, a cast, or the parser. When the
//! predicate matches, the engine reports a [`CrashReport`] with the same
//! classification the paper's sanitizer reports carried.
//!
//! Faults are *data* (the corpus lives in `soft-dialects`); this module is
//! the predicate language and the matcher.

use crate::error::{CrashKind, CrashReport, Stage};
use crate::eval::Evaluated;
use soft_types::boundary;
use soft_types::category::FunctionCategory;
use soft_types::value::{DataType, Value};
use std::fmt;

/// The ten boundary-value-generation patterns of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternId {
    /// Boundary literal pool (±0.99999, ±99999, '', NULL, *).
    P1_1,
    /// Boundary literal as a function argument.
    P1_2,
    /// Digit-run insertion inside a literal.
    P1_3,
    /// Character repetition inside a literal.
    P1_4,
    /// Explicit cast of an argument.
    P2_1,
    /// Implicit cast via `UNION`.
    P2_2,
    /// Cross-function argument transplant.
    P2_3,
    /// `REPEAT`-constructed extreme argument.
    P3_1,
    /// Wrapping an argument in another function.
    P3_2,
    /// Replacing an argument with another function's return.
    P3_3,
}

impl PatternId {
    /// All ten patterns in paper order.
    pub const ALL: [PatternId; 10] = [
        PatternId::P1_1,
        PatternId::P1_2,
        PatternId::P1_3,
        PatternId::P1_4,
        PatternId::P2_1,
        PatternId::P2_2,
        PatternId::P2_3,
        PatternId::P3_1,
        PatternId::P3_2,
        PatternId::P3_3,
    ];

    /// The paper's label, e.g. `P1.2`.
    pub fn label(&self) -> &'static str {
        match self {
            PatternId::P1_1 => "P1.1",
            PatternId::P1_2 => "P1.2",
            PatternId::P1_3 => "P1.3",
            PatternId::P1_4 => "P1.4",
            PatternId::P2_1 => "P2.1",
            PatternId::P2_2 => "P2.2",
            PatternId::P2_3 => "P2.3",
            PatternId::P3_1 => "P3.1",
            PatternId::P3_2 => "P3.2",
            PatternId::P3_3 => "P3.3",
        }
    }

    /// Parses a paper label (`P1.2`) back into the pattern — the inverse of
    /// [`PatternId::label`], used by the telemetry journal reader.
    pub fn from_label(label: &str) -> Option<PatternId> {
        PatternId::ALL.into_iter().find(|p| p.label() == label)
    }

    /// The pattern group (1 = literals, 2 = castings, 3 = nested functions).
    pub fn group(&self) -> u8 {
        match self {
            PatternId::P1_1 | PatternId::P1_2 | PatternId::P1_3 | PatternId::P1_4 => 1,
            PatternId::P2_1 | PatternId::P2_2 | PatternId::P2_3 => 2,
            PatternId::P3_1 | PatternId::P3_2 | PatternId::P3_3 => 3,
        }
    }
}

impl fmt::Display for PatternId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A predicate over a single argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ValuePred {
    /// SQL NULL.
    IsNull,
    /// The `*` pseudo-argument.
    IsStar,
    /// `''` (or empty binary).
    IsEmptyString,
    /// The value has this type.
    TypeIs(DataType),
    /// Numeric with at least this many significant digits.
    DigitsAtLeast(usize),
    /// String (or binary) at least this long.
    LenAtLeast(usize),
    /// String starting with a short prefix repeated at least this many times.
    RepeatRunAtLeast(usize),
    /// JSON/XML/container nested at least this deep.
    NestingAtLeast(usize),
    /// Negative number.
    IsNegative,
    /// Numeric zero.
    IsZero,
    /// Integer with magnitude at least this large.
    IntAbsAtLeast(u64),
    /// Integer exactly equal to this value.
    IntEquals(i64),
    /// Text that looks like structured data (JSON/XML/WKT/date/address).
    StructuredText,
    /// Any of the inner predicates.
    AnyOf(Vec<ValuePred>),
    /// All of the inner predicates (on the same value).
    AllOf(Vec<ValuePred>),
}

impl ValuePred {
    /// Evaluates the predicate against a value.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            ValuePred::IsNull => v.is_null(),
            ValuePred::IsStar => matches!(v, Value::Star),
            ValuePred::IsEmptyString => {
                matches!(v, Value::Text(s) if s.is_empty())
                    || matches!(v, Value::Binary(b) if b.is_empty())
            }
            ValuePred::TypeIs(t) => v.data_type() == *t,
            ValuePred::DigitsAtLeast(n) => match v {
                Value::Integer(i) => i.unsigned_abs().to_string().len() >= *n,
                Value::Decimal(d) => d.total_digits() >= *n,
                Value::Text(s) => {
                    s.chars().filter(|c| c.is_ascii_digit()).count() >= *n
                }
                _ => false,
            },
            ValuePred::LenAtLeast(n) => match v {
                Value::Text(s) => s.len() >= *n,
                Value::Binary(b) => b.len() >= *n,
                _ => false,
            },
            ValuePred::RepeatRunAtLeast(n) => match v {
                Value::Text(s) => boundary::repeated_prefix_run(s) >= *n,
                // Arrays with a long leading run of equal elements are the
                // container analogue of a repeated prefix (P1.4 on array
                // literals).
                Value::Array(items) => {
                    let Some(first) = items.first() else { return false };
                    let key = first.group_key();
                    items.iter().take_while(|i| i.group_key() == key).count() >= *n
                }
                _ => false,
            },
            ValuePred::NestingAtLeast(n) => match v {
                Value::Json(j) => j.depth() >= *n,
                Value::Xml(x) => x.roots.iter().map(|r| r.depth()).max().unwrap_or(0) >= *n,
                Value::Text(s) => boundary::repeated_prefix_run(s) >= *n,
                Value::Array(_) => container_depth(v) >= *n,
                _ => false,
            },
            ValuePred::IsNegative => match v {
                Value::Integer(i) => *i < 0,
                Value::Decimal(d) => d.is_negative(),
                Value::Float(f) => *f < 0.0,
                _ => false,
            },
            ValuePred::IsZero => match v {
                Value::Integer(i) => *i == 0,
                Value::Decimal(d) => d.is_zero(),
                Value::Float(f) => *f == 0.0,
                _ => false,
            },
            ValuePred::IntAbsAtLeast(n) => match v {
                Value::Integer(i) => i.unsigned_abs() >= *n,
                Value::Decimal(d) => d.abs().to_i64().map(|x| x.unsigned_abs() >= *n).unwrap_or(true),
                Value::Float(f) => f.abs() >= *n as f64,
                _ => false,
            },
            ValuePred::IntEquals(n) => matches!(v, Value::Integer(i) if i == n),
            ValuePred::StructuredText => {
                matches!(v, Value::Text(s) if boundary::looks_structured(s))
            }
            ValuePred::AnyOf(preds) => preds.iter().any(|p| p.matches(v)),
            ValuePred::AllOf(preds) => preds.iter().all(|p| p.matches(v)),
        }
    }
}

fn container_depth(v: &Value) -> usize {
    match v {
        Value::Array(items) | Value::Row(items) => {
            1 + items.iter().map(container_depth).max().unwrap_or(0)
        }
        _ => 0,
    }
}

/// A predicate over an argument's provenance.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvPred {
    /// Came (possibly through casts/subqueries) from any function return.
    FromAnyFunction,
    /// Came from this specific function's return.
    FromFunction(String),
    /// Passed through an explicit (user-written) cast.
    ViaExplicitCast,
    /// Passed through an implicit (engine-inserted) cast — `UNION`
    /// alignment or argument coercion.
    ViaImplicitCast,
    /// Passed through any cast.
    ViaAnyCast,
    /// Came out of a scalar subquery.
    ViaSubquery,
    /// Is a plain literal.
    IsLiteral,
}

impl ProvPred {
    /// Evaluates the predicate against an argument's provenance.
    pub fn matches(&self, e: &Evaluated) -> bool {
        match self {
            ProvPred::FromAnyFunction => e.provenance.from_function(None),
            ProvPred::FromFunction(name) => e.provenance.from_function(Some(name)),
            ProvPred::ViaExplicitCast => e.provenance.via_cast(Some(true)),
            ProvPred::ViaImplicitCast => e.provenance.via_cast(Some(false)),
            ProvPred::ViaAnyCast => e.provenance.via_cast(None),
            ProvPred::ViaSubquery => e.provenance.via_subquery(),
            ProvPred::IsLiteral => e.provenance.is_literal(),
        }
    }
}

/// A trigger condition for a fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Some argument (or the `index`-th) satisfies the value predicate.
    Arg {
        /// Specific argument position, or any when `None`.
        index: Option<usize>,
        /// The value predicate.
        pred: ValuePred,
    },
    /// Some argument (or the `index`-th) satisfies the provenance predicate.
    ArgProv {
        /// Specific argument position, or any when `None`.
        index: Option<usize>,
        /// The provenance predicate.
        pred: ProvPred,
    },
    /// The call has exactly this many arguments.
    ArgCount(usize),
    /// The call has at least this many arguments.
    ArgCountAtLeast(usize),
    /// All sub-triggers match.
    And(Vec<Trigger>),
    /// Any sub-trigger matches.
    Or(Vec<Trigger>),
    /// The sub-trigger does not match.
    Not(Box<Trigger>),
    /// Always fires when the site is reached.
    Always,
}

impl Trigger {
    /// Evaluates the trigger against a call's arguments.
    pub fn matches(&self, args: &[Evaluated]) -> bool {
        match self {
            Trigger::Arg { index, pred } => match index {
                Some(i) => args.get(*i).is_some_and(|a| pred.matches(&a.value)),
                None => args.iter().any(|a| pred.matches(&a.value)),
            },
            Trigger::ArgProv { index, pred } => match index {
                Some(i) => args.get(*i).is_some_and(|a| pred.matches(a)),
                None => args.iter().any(|a| pred.matches(a)),
            },
            Trigger::ArgCount(n) => args.len() == *n,
            Trigger::ArgCountAtLeast(n) => args.len() >= *n,
            Trigger::And(ts) => ts.iter().all(|t| t.matches(args)),
            Trigger::Or(ts) => ts.iter().any(|t| t.matches(args)),
            Trigger::Not(t) => !t.matches(args),
            Trigger::Always => true,
        }
    }
}

/// Where a fault is attached.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSite {
    /// A function invocation (canonical lowercase name).
    Function(String),
    /// A cast producing the given target type.
    Cast {
        /// The cast target.
        to: DataType,
        /// Restrict to implicit casts only.
        implicit_only: bool,
    },
}

/// One injected fault — the reproduction of one Table 4 bug.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Stable identifier, e.g. `mysql-aggregate-npd-1`.
    pub id: String,
    /// Where the fault sits.
    pub site: FaultSite,
    /// Crash classification (Table 4's "Bug Type").
    pub kind: CrashKind,
    /// Stage the crash is reported in.
    pub stage: Stage,
    /// Trigger condition.
    pub trigger: Trigger,
    /// Function category (Table 4's "Function Type").
    pub category: FunctionCategory,
    /// The pattern the paper credits with finding this bug.
    pub pattern: PatternId,
    /// Whether the paper reports the bug as fixed.
    pub fixed: bool,
    /// Short description.
    pub description: String,
}

impl FaultSpec {
    /// Builds the crash report this fault produces.
    pub fn crash(&self, function: Option<&str>) -> CrashReport {
        CrashReport {
            fault_id: self.id.clone(),
            kind: self.kind,
            stage: self.stage,
            function: function.map(str::to_string),
            message: self.description.clone(),
        }
    }
}

/// How a logic quirk corrupts a function's return value.
///
/// Quirks are the wrong-*result* analogue of [`FaultSpec`]s: instead of
/// crashing the engine, a matching quirk silently alters the value a
/// function returns — the bug class the campaign's logic-bug oracles
/// (multi-form execution, PQS pivot, cross-dialect differential) exist to
/// catch. Effects must be deterministic pure functions of the input value.
#[derive(Debug, Clone, PartialEq)]
pub enum QuirkEffect {
    /// The function returns SQL NULL instead of its real result.
    NullResult,
    /// The function's result, rendered to text, gains this suffix (text
    /// results are mutated in place; other types are re-rendered as text).
    TextSuffix(String),
}

/// One injected wrong-result bug: a predicate over a function call's
/// arguments plus the corruption applied to the return value when it
/// matches. Like [`FaultSpec`]s, quirks are *data* — the corpus lives in
/// `soft-dialects`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicQuirkSpec {
    /// Stable identifier, e.g. `clickhouse-logic-tostring-1`.
    pub id: String,
    /// Canonical (lowercase) name of the function the quirk sits in.
    pub function: String,
    /// Trigger condition over the call's evaluated arguments.
    pub trigger: Trigger,
    /// The corruption applied to the return value.
    pub effect: QuirkEffect,
    /// Short description.
    pub description: String,
}

impl LogicQuirkSpec {
    /// Applies the quirk's effect to a function's return value.
    pub fn apply(&self, value: Value) -> Value {
        match &self.effect {
            QuirkEffect::NullResult => Value::Null,
            QuirkEffect::TextSuffix(suffix) => match value {
                Value::Text(mut s) => {
                    s.push_str(suffix);
                    Value::Text(s)
                }
                other => Value::Text(format!("{}{}", other.render(), suffix)),
            },
        }
    }
}

/// The set of faults active in an engine instance, indexed for the two
/// fault sites checked on hot paths.
#[derive(Debug, Clone, Default)]
pub struct FaultSet {
    specs: Vec<FaultSpec>,
    /// Function-site spec indices keyed by function name, in spec order —
    /// the per-call check is one map lookup (usually a miss) instead of a
    /// scan over every spec.
    by_function: std::collections::HashMap<String, Vec<u32>>,
    /// Wrong-result quirks, checked on the scalar-function return path.
    quirks: Vec<LogicQuirkSpec>,
}

impl FaultSet {
    /// Builds a fault set.
    pub fn new(specs: Vec<FaultSpec>) -> FaultSet {
        FaultSet::with_quirks(specs, Vec::new())
    }

    /// Builds a fault set with wrong-result quirks attached.
    pub fn with_quirks(specs: Vec<FaultSpec>, quirks: Vec<LogicQuirkSpec>) -> FaultSet {
        let mut by_function: std::collections::HashMap<String, Vec<u32>> =
            std::collections::HashMap::new();
        for (i, s) in specs.iter().enumerate() {
            if let FaultSite::Function(f) = &s.site {
                by_function.entry(f.clone()).or_default().push(i as u32);
            }
        }
        FaultSet { specs, by_function, quirks }
    }

    /// All specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when no faults are loaded.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Checks function-site faults for a call; returns the first match (in
    /// spec order, exactly as the pre-index linear scan did).
    pub fn check_function(&self, name: &str, args: &[Evaluated]) -> Option<&FaultSpec> {
        let candidates = self.by_function.get(name)?;
        candidates.iter().map(|&i| &self.specs[i as usize]).find(|s| s.trigger.matches(args))
    }

    /// All wrong-result quirks.
    pub fn quirks(&self) -> &[LogicQuirkSpec] {
        &self.quirks
    }

    /// True when any function-site fault targets this canonical name — the
    /// batch kernel prefetches this once per call node so fault-free
    /// functions (the common case) skip the per-row lookup entirely.
    pub fn has_function_faults(&self, name: &str) -> bool {
        self.by_function.contains_key(name)
    }

    /// True when any wrong-result quirk targets this canonical name (same
    /// prefetch role as [`FaultSet::has_function_faults`]).
    pub fn has_quirks_for(&self, name: &str) -> bool {
        self.quirks.iter().any(|q| q.function == name)
    }

    /// Checks wrong-result quirks for a scalar call's return path; returns
    /// the first match in corpus order. `name` is the canonical function
    /// name, exactly as passed to [`FaultSet::check_function`].
    pub fn check_quirk(&self, name: &str, args: &[Evaluated]) -> Option<&LogicQuirkSpec> {
        if self.quirks.is_empty() {
            return None;
        }
        self.quirks.iter().find(|q| q.function == name && q.trigger.matches(args))
    }

    /// Checks cast-site faults; `value` is the *pre-cast* operand.
    pub fn check_cast(
        &self,
        to: DataType,
        implicit: bool,
        operand: &Evaluated,
    ) -> Option<&FaultSpec> {
        self.specs.iter().find(|s| match &s.site {
            FaultSite::Cast { to: t, implicit_only } => {
                *t == to
                    && (!*implicit_only || implicit)
                    && s.trigger.matches(std::slice::from_ref(operand))
            }
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Provenance;
    use soft_types::decimal::Decimal;

    fn lit(v: Value) -> Evaluated {
        Evaluated::literal(v)
    }

    #[test]
    fn pattern_groups() {
        assert_eq!(PatternId::P1_3.group(), 1);
        assert_eq!(PatternId::P2_2.group(), 2);
        assert_eq!(PatternId::P3_1.group(), 3);
        assert_eq!(PatternId::P1_2.label(), "P1.2");
    }

    #[test]
    fn value_predicates() {
        assert!(ValuePred::IsNull.matches(&Value::Null));
        assert!(ValuePred::IsStar.matches(&Value::Star));
        assert!(ValuePred::IsEmptyString.matches(&Value::Text(String::new())));
        let d: Decimal = "9".repeat(64).parse().unwrap();
        assert!(ValuePred::DigitsAtLeast(60).matches(&Value::Decimal(d)));
        assert!(!ValuePred::DigitsAtLeast(60).matches(&Value::Integer(5)));
        assert!(ValuePred::RepeatRunAtLeast(50).matches(&Value::Text("[1,".repeat(100))));
        assert!(ValuePred::IntAbsAtLeast(1000).matches(&Value::Integer(-2000)));
    }

    #[test]
    fn provenance_predicates() {
        let from_fn = Evaluated::function_return(Value::Binary(vec![0xff; 4]), "INET6_ATON");
        assert!(ProvPred::FromAnyFunction.matches(&from_fn));
        assert!(ProvPred::FromFunction("inet6_aton".into()).matches(&from_fn));
        assert!(!ProvPred::IsLiteral.matches(&from_fn));
        let via_cast = Evaluated {
            value: Value::Integer(1),
            provenance: Provenance::Cast {
                from: DataType::Text,
                explicit: true,
                inner: Box::new(Provenance::Literal),
            },
        };
        assert!(ProvPred::ViaExplicitCast.matches(&via_cast));
        assert!(!ProvPred::ViaImplicitCast.matches(&via_cast));
    }

    #[test]
    fn trigger_composition() {
        let t = Trigger::And(vec![
            Trigger::ArgCount(2),
            Trigger::Arg { index: Some(1), pred: ValuePred::IsStar },
        ]);
        assert!(t.matches(&[lit(Value::Integer(1)), lit(Value::Star)]));
        assert!(!t.matches(&[lit(Value::Star)]));
        assert!(!t.matches(&[lit(Value::Integer(1)), lit(Value::Integer(2))]));
    }

    #[test]
    fn fault_set_function_lookup() {
        let spec = FaultSpec {
            id: "test-avg".into(),
            site: FaultSite::Function("avg".into()),
            kind: CrashKind::GlobalBufferOverflow,
            stage: Stage::Execution,
            trigger: Trigger::Arg { index: None, pred: ValuePred::DigitsAtLeast(60) },
            category: FunctionCategory::Aggregate,
            pattern: PatternId::P1_2,
            fixed: false,
            description: "oversized decimal".into(),
        };
        let set = FaultSet::new(vec![spec]);
        let big: Decimal = format!("1.{}", "9".repeat(65)).parse().unwrap();
        assert!(set.check_function("avg", &[lit(Value::Decimal(big.clone()))]).is_some());
        assert!(set.check_function("sum", &[lit(Value::Decimal(big))]).is_none());
        assert!(set.check_function("avg", &[lit(Value::Integer(1))]).is_none());
    }

    #[test]
    fn quirk_lookup_and_effects() {
        let quirk = LogicQuirkSpec {
            id: "test-quirk".into(),
            function: "tostring".into(),
            trigger: Trigger::And(vec![
                Trigger::ArgCount(1),
                Trigger::Arg { index: Some(0), pred: ValuePred::IntEquals(42) },
            ]),
            effect: QuirkEffect::TextSuffix(".0".into()),
            description: "wrong text rendering".into(),
        };
        let set = FaultSet::with_quirks(Vec::new(), vec![quirk]);
        assert_eq!(set.quirks().len(), 1);
        let hit = set.check_quirk("tostring", &[lit(Value::Integer(42))]);
        assert!(hit.is_some());
        assert_eq!(
            hit.unwrap().apply(Value::Text("42".into())),
            Value::Text("42.0".into())
        );
        assert!(set.check_quirk("tostring", &[lit(Value::Integer(41))]).is_none());
        assert!(set.check_quirk("upper", &[lit(Value::Integer(42))]).is_none());
        let null_quirk = LogicQuirkSpec {
            id: "test-null".into(),
            function: "abs".into(),
            trigger: Trigger::Always,
            effect: QuirkEffect::NullResult,
            description: "always null".into(),
        };
        assert_eq!(null_quirk.apply(Value::Integer(7)), Value::Null);
    }

    #[test]
    fn fault_set_cast_lookup() {
        let spec = FaultSpec {
            id: "test-cast".into(),
            site: FaultSite::Cast { to: DataType::Json, implicit_only: false },
            kind: CrashKind::StackOverflow,
            stage: Stage::Execution,
            trigger: Trigger::Arg { index: None, pred: ValuePred::RepeatRunAtLeast(500) },
            category: FunctionCategory::Json,
            pattern: PatternId::P3_1,
            fixed: true,
            description: "deep json".into(),
        };
        let set = FaultSet::new(vec![spec]);
        let deep = lit(Value::Text("[".repeat(1000)));
        assert!(set.check_cast(DataType::Json, false, &deep).is_some());
        assert!(set.check_cast(DataType::Xml, false, &deep).is_none());
        let shallow = lit(Value::Text("[1]".into()));
        assert!(set.check_cast(DataType::Json, false, &shallow).is_none());
    }
}
