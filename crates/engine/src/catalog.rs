//! The catalog: in-memory tables and sequences.

use crate::error::SqlError;
use soft_types::value::{DataType, Value};
use std::collections::BTreeMap;

/// A column of a stored table.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (stored lowercase).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// `NOT NULL` constraint.
    pub not_null: bool,
}

/// An in-memory table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Columns in definition order.
    pub columns: Vec<Column>,
    /// Row store.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }
}

/// The catalog of tables and sequences.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    sequences: BTreeMap<String, i64>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Creates a table. Errors if it already exists and `if_not_exists` is
    /// false.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: Vec<Column>,
        if_not_exists: bool,
    ) -> Result<(), SqlError> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(SqlError::Semantic(format!("table {name} already exists")));
        }
        if columns.is_empty() {
            return Err(SqlError::Semantic("a table needs at least one column".into()));
        }
        {
            let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            if names.len() != columns.len() {
                return Err(SqlError::Semantic(format!("duplicate column in table {name}")));
            }
        }
        self.tables.insert(key, Table { columns, rows: Vec::new() });
        Ok(())
    }

    /// Drops a table.
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<(), SqlError> {
        let key = name.to_ascii_lowercase();
        if self.tables.remove(&key).is_none() && !if_exists {
            return Err(SqlError::Semantic(format!("unknown table {name}")));
        }
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Looks up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Advances and returns the named sequence (`NEXTVAL`), creating it at 1.
    pub fn nextval(&mut self, name: &str) -> i64 {
        let v = self.sequences.entry(name.to_ascii_lowercase()).or_insert(0);
        *v += 1;
        *v
    }

    /// Returns the current value of a sequence (`LASTVAL`/`CURRVAL`).
    pub fn currval(&self, name: &str) -> Option<i64> {
        self.sequences.get(&name.to_ascii_lowercase()).copied()
    }

    /// Sets a sequence (`SETVAL`).
    pub fn setval(&mut self, name: &str, value: i64) {
        self.sequences.insert(name.to_ascii_lowercase(), value);
    }

    /// Drops all tables and sequences.
    pub fn reset(&mut self) {
        self.tables.clear();
        self.sequences.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str, t: DataType) -> Column {
        Column { name: name.into(), data_type: t, not_null: false }
    }

    #[test]
    fn create_and_drop() {
        let mut c = Catalog::new();
        c.create_table("T1", vec![col("a", DataType::Integer)], false).unwrap();
        assert!(c.table("t1").is_some());
        assert!(c.create_table("t1", vec![col("a", DataType::Integer)], false).is_err());
        c.create_table("t1", vec![col("a", DataType::Integer)], true).unwrap();
        c.drop_table("T1", false).unwrap();
        assert!(c.drop_table("t1", false).is_err());
        c.drop_table("t1", true).unwrap();
    }

    #[test]
    fn rejects_degenerate_tables() {
        let mut c = Catalog::new();
        assert!(c.create_table("t", vec![], false).is_err());
        assert!(c
            .create_table("t", vec![col("a", DataType::Integer), col("a", DataType::Text)], false)
            .is_err());
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let t = Table {
            columns: vec![col("abc", DataType::Integer)],
            rows: vec![],
        };
        assert_eq!(t.column_index("ABC"), Some(0));
        assert_eq!(t.column_index("missing"), None);
    }

    #[test]
    fn sequences() {
        let mut c = Catalog::new();
        assert_eq!(c.currval("s"), None);
        assert_eq!(c.nextval("s"), 1);
        assert_eq!(c.nextval("S"), 2);
        assert_eq!(c.currval("s"), Some(2));
        c.setval("s", 100);
        assert_eq!(c.nextval("s"), 101);
    }
}
