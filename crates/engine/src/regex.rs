//! A small backtracking regular-expression engine.
//!
//! Regex support is part of the string-function surface the paper studies
//! (CVE-2016-0773 — an `int32` overflow in PostgreSQL's regex character-class
//! handling — is the lead example of a boundary literal bug). This engine is
//! written from scratch: a parser to a pattern AST and a backtracking matcher
//! with an explicit step budget so pathological patterns degrade into an
//! error instead of an unbounded loop.
//!
//! Supported syntax: literals, `.`, `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`,
//! character classes `[a-z]` / `[^...]`, alternation `|`, groups `(...)`,
//! anchors `^`/`$`, and the escapes `\d \D \w \W \s \S` plus escaped
//! metacharacters.

use std::fmt;

/// Regex compilation or evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Malformed pattern.
    Syntax(String),
    /// The matcher exceeded its step budget.
    Budget,
    /// A quantifier bound is out of the supported range.
    BoundTooLarge(u32),
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::Syntax(s) => write!(f, "invalid regex: {s}"),
            RegexError::Budget => write!(f, "regex match exceeded step budget"),
            RegexError::BoundTooLarge(n) => write!(f, "regex repetition bound {n} too large"),
        }
    }
}

impl std::error::Error for RegexError {}

/// Maximum repetition bound accepted in `{n,m}` (mirrors the kind of cap
/// PostgreSQL applies post-CVE-2016-0773).
pub const MAX_REPEAT: u32 = 1000;

/// Matching step budget.
const STEP_BUDGET: usize = 200_000;

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Char(char),
    Any,
    Class { negated: bool, items: Vec<ClassItem> },
    Start,
    End,
    Group(Box<Node>),
    Concat(Vec<Node>),
    Alt(Vec<Node>),
    Repeat { node: Box<Node>, min: u32, max: Option<u32>, greedy: bool },
    Empty,
}

#[derive(Debug, Clone, PartialEq)]
enum ClassItem {
    Single(char),
    Range(char, char),
    Digit(bool),
    Word(bool),
    Space(bool),
}

impl ClassItem {
    fn matches(&self, c: char) -> bool {
        match self {
            ClassItem::Single(x) => c == *x,
            ClassItem::Range(a, b) => (*a..=*b).contains(&c),
            ClassItem::Digit(pos) => c.is_ascii_digit() == *pos,
            ClassItem::Word(pos) => (c.is_ascii_alphanumeric() || c == '_') == *pos,
            ClassItem::Space(pos) => c.is_ascii_whitespace() == *pos,
        }
    }
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    root: Node,
}

impl Regex {
    /// Compiles a pattern.
    pub fn compile(pattern: &str) -> Result<Regex, RegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = RxParser { chars, pos: 0 };
        let root = p.alternation(0)?;
        if p.pos != p.chars.len() {
            return Err(RegexError::Syntax(format!("unexpected ')' at {}", p.pos)));
        }
        Ok(Regex { root })
    }

    /// True if the pattern matches anywhere in `text` (SQL `REGEXP`
    /// semantics).
    pub fn is_match(&self, text: &str) -> Result<bool, RegexError> {
        Ok(self.find(text)?.is_some())
    }

    /// Finds the leftmost match, returning `(start, end)` char indices.
    pub fn find(&self, text: &str) -> Result<Option<(usize, usize)>, RegexError> {
        let chars: Vec<char> = text.chars().collect();
        let mut steps = 0usize;
        for start in 0..=chars.len() {
            let mut m = Matcher { chars: &chars, steps: &mut steps };
            if let Some(end) = m.match_node(&self.root, start, start == 0)? {
                return Ok(Some((start, end)));
            }
        }
        Ok(None)
    }

    /// Replaces every non-overlapping match with `replacement`.
    pub fn replace_all(&self, text: &str, replacement: &str) -> Result<String, RegexError> {
        let chars: Vec<char> = text.chars().collect();
        let mut out = String::new();
        let mut i = 0usize;
        let mut steps = 0usize;
        while i <= chars.len() {
            let mut found = None;
            for start in i..=chars.len() {
                let mut m = Matcher { chars: &chars, steps: &mut steps };
                if let Some(end) = m.match_node(&self.root, start, start == 0)? {
                    found = Some((start, end));
                    break;
                }
            }
            match found {
                None => {
                    out.extend(&chars[i..]);
                    break;
                }
                Some((s, e)) => {
                    out.extend(&chars[i..s]);
                    out.push_str(replacement);
                    if e == s {
                        // Empty match: emit one char and continue to avoid
                        // an infinite loop.
                        if s < chars.len() {
                            out.push(chars[s]);
                        }
                        i = s + 1;
                    } else {
                        i = e;
                    }
                    if i > chars.len() {
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Returns the first matched substring, if any.
    pub fn first_match(&self, text: &str) -> Result<Option<String>, RegexError> {
        let chars: Vec<char> = text.chars().collect();
        match self.find(text)? {
            None => Ok(None),
            Some((s, e)) => Ok(Some(chars[s..e].iter().collect())),
        }
    }
}

struct RxParser {
    chars: Vec<char>,
    pos: usize,
}

impl RxParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn alternation(&mut self, depth: usize) -> Result<Node, RegexError> {
        if depth > 64 {
            return Err(RegexError::Syntax("pattern too deeply nested".into()));
        }
        let mut branches = vec![self.concat(depth)?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.concat(depth)?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Node::Alt(branches))
        }
    }

    fn concat(&mut self, depth: usize) -> Result<Node, RegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.quantified(depth)?);
        }
        match items.len() {
            0 => Ok(Node::Empty),
            1 => Ok(items.pop().expect("one item")),
            _ => Ok(Node::Concat(items)),
        }
    }

    fn quantified(&mut self, depth: usize) -> Result<Node, RegexError> {
        let atom = self.atom(depth)?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                self.pos += 1;
                let min = self.number()?;
                let max = if self.peek() == Some(',') {
                    self.pos += 1;
                    if self.peek() == Some('}') {
                        None
                    } else {
                        Some(self.number()?)
                    }
                } else {
                    Some(min)
                };
                if self.peek() != Some('}') {
                    return Err(RegexError::Syntax("expected '}'".into()));
                }
                self.pos += 1;
                if min > MAX_REPEAT || max.is_some_and(|m| m > MAX_REPEAT) {
                    return Err(RegexError::BoundTooLarge(max.unwrap_or(min)));
                }
                if let Some(m) = max {
                    if m < min {
                        return Err(RegexError::Syntax("repetition max < min".into()));
                    }
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        let greedy = if self.peek() == Some('?') {
            self.pos += 1;
            false
        } else {
            true
        };
        if matches!(atom, Node::Start | Node::End) {
            return Err(RegexError::Syntax("cannot quantify an anchor".into()));
        }
        Ok(Node::Repeat { node: Box::new(atom), min, max, greedy })
    }

    fn number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        let mut v: u64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                v = v * 10 + d as u64;
                if v > u32::MAX as u64 {
                    return Err(RegexError::BoundTooLarge(u32::MAX));
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(RegexError::Syntax("expected number".into()));
        }
        Ok(v as u32)
    }

    fn atom(&mut self, depth: usize) -> Result<Node, RegexError> {
        match self.peek() {
            None => Err(RegexError::Syntax("unexpected end of pattern".into())),
            Some('(') => {
                self.pos += 1;
                // Support (?:...) as a plain group.
                if self.peek() == Some('?') {
                    self.pos += 1;
                    if self.peek() == Some(':') {
                        self.pos += 1;
                    } else {
                        return Err(RegexError::Syntax("unsupported group flag".into()));
                    }
                }
                let inner = self.alternation(depth + 1)?;
                if self.peek() != Some(')') {
                    return Err(RegexError::Syntax("expected ')'".into()));
                }
                self.pos += 1;
                Ok(Node::Group(Box::new(inner)))
            }
            Some(')') => Err(RegexError::Syntax("unexpected ')'".into())),
            Some('[') => self.class(),
            Some('.') => {
                self.pos += 1;
                Ok(Node::Any)
            }
            Some('^') => {
                self.pos += 1;
                Ok(Node::Start)
            }
            Some('$') => {
                self.pos += 1;
                Ok(Node::End)
            }
            Some('\\') => {
                self.pos += 1;
                let c = self.peek().ok_or_else(|| {
                    RegexError::Syntax("trailing backslash".into())
                })?;
                self.pos += 1;
                Ok(match c {
                    'd' => Node::Class { negated: false, items: vec![ClassItem::Digit(true)] },
                    'D' => Node::Class { negated: false, items: vec![ClassItem::Digit(false)] },
                    'w' => Node::Class { negated: false, items: vec![ClassItem::Word(true)] },
                    'W' => Node::Class { negated: false, items: vec![ClassItem::Word(false)] },
                    's' => Node::Class { negated: false, items: vec![ClassItem::Space(true)] },
                    'S' => Node::Class { negated: false, items: vec![ClassItem::Space(false)] },
                    'n' => Node::Char('\n'),
                    't' => Node::Char('\t'),
                    'r' => Node::Char('\r'),
                    other => Node::Char(other),
                })
            }
            Some(c) if c == '*' || c == '+' || c == '?' || c == '{' => {
                Err(RegexError::Syntax(format!("dangling quantifier {c:?}")))
            }
            Some(c) => {
                self.pos += 1;
                Ok(Node::Char(c))
            }
        }
    }

    fn class(&mut self) -> Result<Node, RegexError> {
        debug_assert_eq!(self.peek(), Some('['));
        self.pos += 1;
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| RegexError::Syntax("unterminated character class".into()))?;
            if c == ']' && !items.is_empty() {
                self.pos += 1;
                break;
            }
            self.pos += 1;
            let lo = if c == '\\' {
                let e = self
                    .peek()
                    .ok_or_else(|| RegexError::Syntax("trailing backslash in class".into()))?;
                self.pos += 1;
                match e {
                    'd' => {
                        items.push(ClassItem::Digit(true));
                        continue;
                    }
                    'w' => {
                        items.push(ClassItem::Word(true));
                        continue;
                    }
                    's' => {
                        items.push(ClassItem::Space(true));
                        continue;
                    }
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }
            } else {
                c
            };
            if self.peek() == Some('-')
                && self.chars.get(self.pos + 1).is_some_and(|&c| c != ']')
            {
                self.pos += 1;
                let hi = self
                    .peek()
                    .ok_or_else(|| RegexError::Syntax("unterminated range".into()))?;
                self.pos += 1;
                if hi < lo {
                    return Err(RegexError::Syntax(format!("inverted range {lo}-{hi}")));
                }
                items.push(ClassItem::Range(lo, hi));
            } else {
                items.push(ClassItem::Single(lo));
            }
        }
        Ok(Node::Class { negated, items })
    }
}

struct Matcher<'a> {
    chars: &'a [char],
    steps: &'a mut usize,
}

impl<'a> Matcher<'a> {
    /// Attempts to match `node` at `pos`; returns the end position on
    /// success. `at_start` is true when `pos` 0 corresponds to text start.
    fn match_node(
        &mut self,
        node: &Node,
        pos: usize,
        _at_start: bool,
    ) -> Result<Option<usize>, RegexError> {
        self.match_seq(std::slice::from_ref(node), pos)
    }

    fn bump(&mut self) -> Result<(), RegexError> {
        *self.steps += 1;
        if *self.steps > STEP_BUDGET {
            return Err(RegexError::Budget);
        }
        Ok(())
    }

    /// Matches a sequence of nodes starting at `pos`.
    fn match_seq(&mut self, seq: &[Node], pos: usize) -> Result<Option<usize>, RegexError> {
        self.bump()?;
        let Some((first, rest)) = seq.split_first() else {
            return Ok(Some(pos));
        };
        match first {
            Node::Empty => self.match_seq(rest, pos),
            Node::Char(c) => {
                if self.chars.get(pos) == Some(c) {
                    self.match_seq(rest, pos + 1)
                } else {
                    Ok(None)
                }
            }
            Node::Any => {
                if pos < self.chars.len() {
                    self.match_seq(rest, pos + 1)
                } else {
                    Ok(None)
                }
            }
            Node::Class { negated, items } => match self.chars.get(pos) {
                Some(&c) if items.iter().any(|i| i.matches(c)) != *negated => {
                    self.match_seq(rest, pos + 1)
                }
                _ => Ok(None),
            },
            Node::Start => {
                if pos == 0 {
                    self.match_seq(rest, pos)
                } else {
                    Ok(None)
                }
            }
            Node::End => {
                if pos == self.chars.len() {
                    self.match_seq(rest, pos)
                } else {
                    Ok(None)
                }
            }
            Node::Group(inner) => {
                let mut seq2 = vec![(**inner).clone()];
                seq2.extend_from_slice(rest);
                self.match_seq(&seq2, pos)
            }
            Node::Concat(items) => {
                let mut seq2 = items.clone();
                seq2.extend_from_slice(rest);
                self.match_seq(&seq2, pos)
            }
            Node::Alt(branches) => {
                for b in branches {
                    let mut seq2 = vec![b.clone()];
                    seq2.extend_from_slice(rest);
                    if let Some(end) = self.match_seq(&seq2, pos)? {
                        return Ok(Some(end));
                    }
                }
                Ok(None)
            }
            Node::Repeat { node, min, max, greedy } => {
                self.match_repeat(node, *min, *max, *greedy, rest, pos)
            }
        }
    }

    fn match_repeat(
        &mut self,
        node: &Node,
        min: u32,
        max: Option<u32>,
        greedy: bool,
        rest: &[Node],
        pos: usize,
    ) -> Result<Option<usize>, RegexError> {
        // Collect the chain of end positions for 0..=max repetitions.
        let mut ends = vec![pos];
        let mut cur = pos;
        let cap = max.unwrap_or(u32::MAX);
        while (ends.len() as u32 - 1) < cap {
            self.bump()?;
            let next = {
                let single = std::slice::from_ref(node);
                self.match_seq(single, cur)?
            };
            match next {
                Some(end) if end > cur => {
                    ends.push(end);
                    cur = end;
                }
                Some(_) => break, // Zero-width repetition: stop.
                None => break,
            }
        }
        if (ends.len() as u32 - 1) < min {
            return Ok(None);
        }
        let valid = &ends[min as usize..];
        let order: Vec<usize> = if greedy {
            valid.iter().rev().copied().collect()
        } else {
            valid.to_vec()
        };
        for end in order {
            if let Some(done) = self.match_seq(rest, end)? {
                return Ok(Some(done));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Regex::compile(pattern).unwrap().is_match(text).unwrap()
    }

    #[test]
    fn literals_and_any() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
        assert!(m("a.c", "axc"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("a{3}", "aaa"));
        assert!(!m("^a{3}$", "aa"));
        assert!(m("^a{2,4}$", "aaa"));
        assert!(!m("^a{2,4}$", "aaaaa"));
    }

    #[test]
    fn classes() {
        assert!(m("[a-c]+", "abc"));
        assert!(!m("^[a-c]+$", "abd"));
        assert!(m("[^0-9]", "a"));
        assert!(!m("^[^0-9]$", "5"));
        assert!(m("\\d{3}", "abc123"));
        assert!(m("[\\d]-", "1-"));
        assert!(m("[]]", "]"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(cat|dog)$", "dog"));
        assert!(m("^(ab)+$", "ababab"));
        assert!(!m("^(ab)+$", "aba"));
        assert!(m("(?:x|y)z", "yz"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^bc", "abc"));
        assert!(m("def$", "abcdef"));
    }

    #[test]
    fn find_positions() {
        let r = Regex::compile("b+").unwrap();
        assert_eq!(r.find("aabbbcc").unwrap(), Some((2, 5)));
        assert_eq!(r.find("xyz").unwrap(), None);
        assert_eq!(r.first_match("aabbbcc").unwrap(), Some("bbb".into()));
    }

    #[test]
    fn replace_all() {
        let r = Regex::compile("o").unwrap();
        assert_eq!(r.replace_all("foo bot", "0").unwrap(), "f00 b0t");
        let r = Regex::compile("\\d+").unwrap();
        assert_eq!(r.replace_all("a1b22c", "#").unwrap(), "a#b#c");
    }

    #[test]
    fn syntax_errors() {
        for p in ["(", ")", "a{2", "*a", "a{4,2}", "[", "a\\", "(?i)x", "[z-a]"] {
            assert!(Regex::compile(p).is_err(), "{p:?} should fail");
        }
    }

    #[test]
    fn repetition_bound_guard() {
        // The post-CVE-2016-0773 style cap: enormous bounds are rejected
        // at compile time instead of looping.
        match Regex::compile("a{999999999}") {
            Err(RegexError::BoundTooLarge(_)) => {}
            other => panic!("expected BoundTooLarge, got {other:?}"),
        }
        assert!(Regex::compile(&format!("a{{{MAX_REPEAT}}}")).is_ok());
    }

    #[test]
    fn step_budget_bounds_pathological_backtracking() {
        // (a+)+b against a long non-matching string is the classic
        // exponential case; the budget must kick in rather than hang.
        let r = Regex::compile("(a+)+b").unwrap();
        let text = "a".repeat(40);
        match r.is_match(&text) {
            Err(RegexError::Budget) => {}
            Ok(false) => {} // Fast rejection is fine too.
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lazy_quantifier() {
        let r = Regex::compile("<.+?>").unwrap();
        assert_eq!(r.first_match("<a><b>").unwrap(), Some("<a>".into()));
    }
}
