//! Coverage instrumentation for the SQL-function component.
//!
//! Table 5 of the paper counts *triggered built-in functions*; Table 6 counts
//! *covered code branches of the SQL-function modules* (gcov over the real
//! DBMS sources). This module is the substituted measurement (see DESIGN.md
//! §2): the function component records
//!
//! 1. every function name that executed, and
//! 2. a **feature branch** for each genuine decision point the built-in
//!    implementations annotate (`ctx.branch("substr", "negative-start")`)
//!    plus a structured universe of (function × argument-shape) branches
//!    derived from argument types and boundary classes.
//!
//! More boundary shapes reaching a function ⇒ more distinct branches, which
//! is the relationship Table 6 measures across tools.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// A coverage accumulator.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    functions: HashSet<String>,
    branches: HashSet<u64>,
}

fn branch_id(parts: &[&str]) -> u64 {
    let mut h = DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
        0xffu8.hash(&mut h);
    }
    h.finish()
}

impl Coverage {
    /// Creates an empty accumulator.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Records that `function` executed.
    pub fn record_function(&mut self, function: &str) {
        if !self.functions.contains(function) {
            self.functions.insert(function.to_string());
        }
    }

    /// Records an explicit decision-point branch inside `function`.
    pub fn record_branch(&mut self, function: &str, site: &str) {
        self.branches.insert(branch_id(&["fn", function, site]));
    }

    /// Records a structured feature branch (argument shape, cast source, ...).
    pub fn record_feature(&mut self, function: &str, feature: &str) {
        self.branches.insert(branch_id(&["feat", function, feature]));
    }

    /// Number of distinct functions triggered (the Table 5 metric).
    pub fn functions_triggered(&self) -> usize {
        self.functions.len()
    }

    /// Number of distinct branches covered (the Table 6 metric).
    pub fn branches_covered(&self) -> usize {
        self.branches.len()
    }

    /// The triggered function names, sorted.
    pub fn function_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.functions.iter().cloned().collect();
        v.sort();
        v
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Coverage) {
        self.functions.extend(other.functions.iter().cloned());
        self.branches.extend(other.branches.iter().copied());
    }

    /// Clears all recorded coverage.
    pub fn reset(&mut self) {
        self.functions.clear();
        self.branches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_dedupe() {
        let mut c = Coverage::new();
        c.record_function("avg");
        c.record_function("avg");
        c.record_function("sum");
        assert_eq!(c.functions_triggered(), 2);
        assert_eq!(c.function_names(), vec!["avg".to_string(), "sum".to_string()]);
    }

    #[test]
    fn branches_distinguish_function_and_site() {
        let mut c = Coverage::new();
        c.record_branch("substr", "neg-start");
        c.record_branch("substr", "neg-start");
        c.record_branch("substr", "zero-len");
        c.record_branch("left", "neg-start");
        assert_eq!(c.branches_covered(), 3);
    }

    #[test]
    fn feature_and_explicit_branches_are_distinct_namespaces() {
        let mut c = Coverage::new();
        c.record_branch("f", "x");
        c.record_feature("f", "x");
        assert_eq!(c.branches_covered(), 2);
    }

    #[test]
    fn merge_unions() {
        let mut a = Coverage::new();
        a.record_function("f");
        a.record_branch("f", "1");
        let mut b = Coverage::new();
        b.record_function("g");
        b.record_branch("f", "1");
        b.record_branch("f", "2");
        a.merge(&b);
        assert_eq!(a.functions_triggered(), 2);
        assert_eq!(a.branches_covered(), 2);
    }
}
