//! Statement execution: the parse → optimize → execute pipeline over the
//! in-memory catalog, with provenance-carrying expression evaluation,
//! aggregate machinery, UNION type alignment, coverage recording and fault
//! checking.

use crate::catalog::{Catalog, Column};
use crate::coverage::Coverage;
use crate::engine::DispatchEntry;
use crate::error::{EngineError, ResultSet, SqlError};
use crate::eval::{Evaluated, Provenance};
use crate::fault::FaultSet;
use crate::regex::Regex;
use crate::registry::{
    perform_cast, FnCtx, FunctionDef, FunctionImpl, FunctionRegistry, Limits, SessionState,
};
use soft_parser::ast::*;
use soft_types::boundary;
use soft_types::cast::CastStrictness;
use soft_types::decimal::Decimal;
use soft_types::value::{DataType, Value};
use std::collections::HashMap;

/// Maximum nesting of scalar subqueries.
const MAX_SUBQUERY_DEPTH: usize = 16;

/// Column-name bindings plus the materialised source rows of a FROM clause.
type BoundRows = (Vec<(String, usize)>, Vec<Vec<Evaluated>>);

/// The executor borrows the engine's parts for one statement.
pub(crate) struct Exec<'e> {
    pub registry: &'e FunctionRegistry,
    /// Per-statement function-dispatch table built at prepare time: one
    /// entry per distinct as-written spelling, carrying the interned
    /// lowercase key and registry index so per-call lookup allocates
    /// nothing. Empty for statements executed outside the prepared path
    /// (the registry fallback still resolves every call).
    pub dispatch: &'e [DispatchEntry],
    pub faults: &'e FaultSet,
    pub coverage: &'e mut Coverage,
    pub catalog: &'e mut Catalog,
    pub session: &'e mut SessionState,
    pub strictness: CastStrictness,
    pub limits: Limits,
    pub memory_used: usize,
    pub subquery_depth: usize,
    /// Scratch buffer for coverage feature keys (reused across calls so the
    /// per-call recording allocates nothing after the first use).
    pub feature_buf: String,
}

/// A row-evaluation context: column bindings plus optional group rows for
/// aggregate evaluation.
#[derive(Clone, Copy)]
pub(crate) struct RowCtx<'r> {
    /// Binding names, lowercase, aligned with row positions. Qualified
    /// aliases (`t.c`) are included as extra entries.
    columns: &'r [(String, usize)],
    /// The current row (None while evaluating against "no row", e.g. an
    /// empty aggregate group).
    row: Option<&'r [Evaluated]>,
    /// Source rows of the current group, when aggregates are in scope.
    group: Option<&'r [Vec<Evaluated>]>,
}

impl<'r> RowCtx<'r> {
    pub(crate) const EMPTY: RowCtx<'static> =
        RowCtx { columns: &[], row: None, group: None };
}

impl<'e> Exec<'e> {
    fn sem<T>(&self, msg: impl Into<String>) -> Result<T, EngineError> {
        Err(EngineError::Sql(SqlError::Semantic(msg.into())))
    }

    pub fn exec_statement(&mut self, stmt: &Statement) -> Result<crate::error::ExecOutcome, EngineError> {
        match stmt {
            Statement::Select(s) => {
                let (columns, rows) = self.exec_select(s)?;
                let rows = rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|e| e.value).collect())
                    .collect();
                Ok(crate::error::ExecOutcome::Rows(ResultSet { columns, rows }))
            }
            Statement::CreateTable(ct) => {
                let mut columns = Vec::with_capacity(ct.columns.len());
                for c in &ct.columns {
                    let dt = resolve_type_name(&c.type_name).ok_or_else(|| {
                        EngineError::Sql(SqlError::Semantic(format!(
                            "unknown column type {}",
                            c.type_name
                        )))
                    })?;
                    columns.push(Column {
                        name: c.name.to_ascii_lowercase(),
                        data_type: dt,
                        not_null: c.not_null,
                    });
                }
                self.catalog.create_table(&ct.name, columns, ct.if_not_exists)?;
                Ok(crate::error::ExecOutcome::Ok(format!("CREATE TABLE {}", ct.name)))
            }
            Statement::Insert(ins) => self.exec_insert(ins),
            Statement::DropTable { name, if_exists } => {
                self.catalog.drop_table(name, *if_exists)?;
                Ok(crate::error::ExecOutcome::Ok(format!("DROP TABLE {name}")))
            }
        }
    }

    fn exec_insert(&mut self, ins: &Insert) -> Result<crate::error::ExecOutcome, EngineError> {
        let (col_indices, col_types, ncols) = {
            let table = self
                .catalog
                .table(&ins.table)
                .ok_or_else(|| SqlError::Semantic(format!("unknown table {}", ins.table)))?;
            let ncols = table.columns.len();
            let indices: Vec<usize> = if ins.columns.is_empty() {
                (0..ncols).collect()
            } else {
                let mut v = Vec::with_capacity(ins.columns.len());
                for c in &ins.columns {
                    match table.column_index(c) {
                        Some(i) => v.push(i),
                        None => {
                            return self.sem(format!("unknown column {c} in {}", ins.table))
                        }
                    }
                }
                v
            };
            let types: Vec<(DataType, bool)> =
                table.columns.iter().map(|c| (c.data_type, c.not_null)).collect();
            (indices, types, ncols)
        };
        let mut stored_rows = Vec::with_capacity(ins.rows.len());
        for row in &ins.rows {
            if row.len() != col_indices.len() {
                return self.sem(format!(
                    "INSERT row has {} values for {} columns",
                    row.len(),
                    col_indices.len()
                ));
            }
            let mut stored: Vec<Value> = vec![Value::Null; ncols];
            for (expr, &idx) in row.iter().zip(&col_indices) {
                let v = self.eval(expr, RowCtx::EMPTY)?;
                let (ty, not_null) = col_types[idx];
                let cast = perform_cast(
                    &v,
                    ty,
                    false,
                    self.strictness,
                    &self.cast_limits(),
                    self.coverage,
                    self.faults,
                )?;
                if not_null && cast.value.is_null() {
                    return Err(EngineError::Sql(SqlError::Semantic(
                        "NULL value in NOT NULL column".into(),
                    )));
                }
                stored[idx] = cast.value;
            }
            stored_rows.push(stored);
        }
        let n = stored_rows.len();
        let table = self
            .catalog
            .table_mut(&ins.table)
            .expect("existence checked above");
        table.rows.extend(stored_rows);
        if table.rows.len() > self.limits.max_rows {
            return Err(EngineError::Sql(SqlError::ResourceLimit(format!(
                "table {} exceeds {} rows",
                ins.table, self.limits.max_rows
            ))));
        }
        self.session.last_insert_id += n as i64;
        Ok(crate::error::ExecOutcome::Ok(format!("INSERT {n}")))
    }

    pub(crate) fn cast_limits(&self) -> soft_types::cast::CastLimits {
        soft_types::cast::CastLimits {
            max_decimal_digits: self.limits.max_decimal_digits,
            max_nesting_depth: self.limits.max_nesting_depth,
        }
    }

    /// Executes a full select; returns output column names and rows.
    pub fn exec_select(
        &mut self,
        stmt: &SelectStmt,
    ) -> Result<(Vec<String>, Vec<Vec<Evaluated>>), EngineError> {
        let (columns, mut rows) = self.exec_body(&stmt.body)?;
        if !stmt.order_by.is_empty() {
            self.order_rows(&columns, &mut rows, &stmt.order_by)?;
        }
        if let Some(limit) = stmt.limit {
            rows.truncate(limit as usize);
        }
        if rows.len() > self.limits.max_rows {
            return Err(EngineError::Sql(SqlError::ResourceLimit(format!(
                "result exceeds {} rows",
                self.limits.max_rows
            ))));
        }
        Ok((columns, rows))
    }

    fn order_rows(
        &mut self,
        columns: &[String],
        rows: &mut [Vec<Evaluated>],
        order_by: &[OrderItem],
    ) -> Result<(), EngineError> {
        // Precompute sort keys per row.
        let bindings: Vec<(String, usize)> = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.to_ascii_lowercase(), i))
            .collect();
        let mut keyed: Vec<(Vec<Evaluated>, Vec<Evaluated>)> = Vec::with_capacity(rows.len());
        for row in rows.iter() {
            let mut keys = Vec::with_capacity(order_by.len());
            for item in order_by {
                // Positional ORDER BY: an integer literal indexes output
                // columns.
                if let Expr::Literal(Literal::Number(n)) = &item.expr {
                    if let Ok(ix) = n.parse::<usize>() {
                        if ix >= 1 && ix <= row.len() {
                            keys.push(row[ix - 1].clone());
                            continue;
                        }
                    }
                }
                let ctx = RowCtx { columns: &bindings, row: Some(row), group: None };
                keys.push(self.eval(&item.expr, ctx)?);
            }
            keyed.push((keys, row.to_vec()));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, item) in order_by.iter().enumerate() {
                let ord = match ka[i].value.sql_cmp(&kb[i].value) {
                    Ok(Some(o)) => o,
                    // NULLs first; incomparables treated as equal.
                    Ok(None) => match (ka[i].value.is_null(), kb[i].value.is_null()) {
                        (true, false) => std::cmp::Ordering::Less,
                        (false, true) => std::cmp::Ordering::Greater,
                        _ => std::cmp::Ordering::Equal,
                    },
                    Err(_) => std::cmp::Ordering::Equal,
                };
                let ord = if item.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        for (slot, (_, row)) in rows.iter_mut().zip(keyed) {
            *slot = row;
        }
        Ok(())
    }

    fn exec_body(
        &mut self,
        body: &SelectBody,
    ) -> Result<(Vec<String>, Vec<Vec<Evaluated>>), EngineError> {
        match body {
            SelectBody::Query(q) => self.exec_query(q),
            SelectBody::Union { left, right, all } => {
                let (lcols, lrows) = self.exec_body(left)?;
                let (rcols, rrows) = self.exec_body(right)?;
                if lcols.len() != rcols.len() {
                    return self.sem(format!(
                        "UNION branches have {} and {} columns",
                        lcols.len(),
                        rcols.len()
                    ));
                }
                // Determine the common type per column and align both sides
                // with implicit casts — the P2.2 implicit-casting site.
                let ncols = lcols.len();
                let mut target: Vec<DataType> = vec![DataType::Null; ncols];
                for row in lrows.iter().chain(rrows.iter()) {
                    for (i, cell) in row.iter().enumerate() {
                        target[i] = union_type(target[i], cell.value.data_type());
                    }
                }
                let mut out = Vec::with_capacity(lrows.len() + rrows.len());
                for row in lrows.into_iter().chain(rrows) {
                    let mut aligned = Vec::with_capacity(ncols);
                    for (i, cell) in row.into_iter().enumerate() {
                        if target[i] == DataType::Null
                            || cell.value.is_null()
                            || cell.value.data_type() == target[i]
                        {
                            aligned.push(cell);
                        } else {
                            aligned.push(perform_cast(
                                &cell,
                                target[i],
                                false,
                                self.strictness,
                                &self.cast_limits(),
                                self.coverage,
                                self.faults,
                            )?);
                        }
                    }
                    out.push(aligned);
                }
                if !all {
                    out = dedup_rows(out);
                }
                Ok((lcols, out))
            }
        }
    }

    fn exec_query(
        &mut self,
        q: &Query,
    ) -> Result<(Vec<String>, Vec<Vec<Evaluated>>), EngineError> {
        // Resolve the source.
        let (bindings, source_rows) = self.resolve_from(q)?;
        // WHERE filter.
        if let Some(w) = &q.where_clause {
            if contains_aggregate_err(self.registry, w) {
                return self.sem("aggregates are not allowed in WHERE");
            }
        }
        let mut filtered = Vec::with_capacity(source_rows.len());
        for row in source_rows {
            let keep = match &q.where_clause {
                None => true,
                Some(w) => {
                    let ctx = RowCtx { columns: &bindings, row: Some(&row), group: None };
                    let v = self.eval(w, ctx)?;
                    v.value.truthiness() == Some(true)
                }
            };
            if keep {
                filtered.push(row);
            }
        }
        let has_aggregate = q.items.iter().any(|it| match it {
            SelectItem::Expr { expr, .. } => contains_aggregate_err(self.registry, expr),
            SelectItem::Wildcard => false,
        }) || q
            .having
            .as_ref()
            .is_some_and(|h| contains_aggregate_err(self.registry, h))
            || !q.group_by.is_empty();
        let (columns, rows) = if has_aggregate {
            self.exec_aggregate_query(q, &bindings, filtered)?
        } else {
            self.exec_scalar_query(q, &bindings, filtered)?
        };
        let rows = if q.distinct { dedup_rows(rows) } else { rows };
        Ok((columns, rows))
    }

    fn resolve_from(
        &mut self,
        q: &Query,
    ) -> Result<BoundRows, EngineError> {
        match &q.from {
            None => Ok((Vec::new(), vec![Vec::new()])),
            Some(TableRef::Named { name, alias }) => {
                let table = match self.catalog.table(name) {
                    Some(t) => t,
                    None => return self.sem(format!("unknown table {name}")),
                };
                let mut bindings = Vec::new();
                for (i, c) in table.columns.iter().enumerate() {
                    bindings.push((c.name.clone(), i));
                    bindings.push((format!("{}.{}", name.to_ascii_lowercase(), c.name), i));
                    if let Some(a) = alias {
                        bindings.push((format!("{}.{}", a.to_ascii_lowercase(), c.name), i));
                    }
                }
                let rows: Vec<Vec<Evaluated>> = table
                    .rows
                    .iter()
                    .map(|r| r.iter().map(|v| Evaluated::column(v.clone())).collect())
                    .collect();
                Ok((bindings, rows))
            }
            Some(TableRef::Subquery { query, alias }) => {
                let (cols, rows) = self.exec_select(query)?;
                let mut bindings = Vec::new();
                for (i, c) in cols.iter().enumerate() {
                    let lower = c.to_ascii_lowercase();
                    bindings.push((lower.clone(), i));
                    if let Some(a) = alias {
                        bindings.push((format!("{}.{}", a.to_ascii_lowercase(), lower), i));
                    }
                }
                Ok((bindings, rows))
            }
        }
    }

    pub(crate) fn output_name(item: &SelectItem, index: usize) -> String {
        match item {
            SelectItem::Wildcard => format!("col{index}"),
            SelectItem::Expr { alias: Some(a), .. } => a.clone(),
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Column(c) => c.clone(),
                other => other.to_string(),
            },
        }
    }

    fn exec_scalar_query(
        &mut self,
        q: &Query,
        bindings: &[(String, usize)],
        rows: Vec<Vec<Evaluated>>,
    ) -> Result<(Vec<String>, Vec<Vec<Evaluated>>), EngineError> {
        // Output column names.
        let mut columns = Vec::new();
        let source_width = bindings.iter().map(|(_, i)| i + 1).max().unwrap_or(0);
        for (i, item) in q.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    if q.from.is_none() {
                        return self.sem("SELECT * requires a FROM clause");
                    }
                    let mut seen = vec![false; source_width];
                    for (name, idx) in bindings {
                        if !name.contains('.') && !seen[*idx] {
                            seen[*idx] = true;
                            columns.push(name.clone());
                        }
                    }
                }
                _ => columns.push(Self::output_name(item, i)),
            }
        }
        let mut out = Vec::with_capacity(rows.len());
        for row in &rows {
            let ctx = RowCtx { columns: bindings, row: Some(row), group: None };
            let mut out_row = Vec::with_capacity(columns.len());
            for item in &q.items {
                match item {
                    SelectItem::Wildcard => {
                        let mut seen = vec![false; source_width];
                        for (name, idx) in bindings {
                            if !name.contains('.') && !seen[*idx] {
                                seen[*idx] = true;
                                out_row.push(row[*idx].clone());
                            }
                        }
                    }
                    SelectItem::Expr { expr, .. } => out_row.push(self.eval(expr, ctx)?),
                }
            }
            out.push(out_row);
            if out.len() > self.limits.max_rows {
                return Err(EngineError::Sql(SqlError::ResourceLimit(format!(
                    "result exceeds {} rows",
                    self.limits.max_rows
                ))));
            }
        }
        Ok((columns, out))
    }

    fn exec_aggregate_query(
        &mut self,
        q: &Query,
        bindings: &[(String, usize)],
        rows: Vec<Vec<Evaluated>>,
    ) -> Result<(Vec<String>, Vec<Vec<Evaluated>>), EngineError> {
        // Partition into groups.
        let mut group_order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<Vec<Evaluated>>> = HashMap::new();
        if q.group_by.is_empty() {
            group_order.push(String::new());
            groups.insert(String::new(), rows);
        } else {
            for row in rows {
                let ctx = RowCtx { columns: bindings, row: Some(&row), group: None };
                let mut key = String::new();
                for g in &q.group_by {
                    let v = self.eval(g, ctx)?;
                    key.push_str(&v.value.group_key());
                    key.push('\u{1}');
                }
                if !groups.contains_key(&key) {
                    group_order.push(key.clone());
                }
                groups.entry(key).or_default().push(row);
            }
        }
        let columns: Vec<String> = q
            .items
            .iter()
            .enumerate()
            .map(|(i, it)| Self::output_name(it, i))
            .collect();
        let mut out = Vec::with_capacity(group_order.len());
        for key in group_order {
            let grows = groups.remove(&key).unwrap_or_default();
            let first = grows.first().cloned();
            let ctx = RowCtx {
                columns: bindings,
                row: first.as_deref(),
                group: Some(&grows),
            };
            if let Some(h) = &q.having {
                let hv = self.eval(h, ctx)?;
                if hv.value.truthiness() != Some(true) {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(columns.len());
            for item in &q.items {
                match item {
                    SelectItem::Wildcard => {
                        return self.sem("SELECT * cannot be combined with aggregation")
                    }
                    SelectItem::Expr { expr, .. } => out_row.push(self.eval(expr, ctx)?),
                }
            }
            out.push(out_row);
        }
        Ok((columns, out))
    }

    // ---- expression evaluation ----

    pub(crate) fn eval(&mut self, expr: &Expr, ctx: RowCtx<'_>) -> Result<Evaluated, EngineError> {
        match expr {
            Expr::Literal(l) => Ok(self.eval_literal(l)),
            Expr::Star => Ok(Evaluated { value: Value::Star, provenance: Provenance::Star }),
            Expr::Column(name) => self.eval_column(name, ctx),
            Expr::Function(fx) => self.eval_function(fx, ctx),
            Expr::Cast { expr, type_name, .. } => {
                let inner = self.eval(expr, ctx)?;
                let Some(ty) = resolve_type_name(type_name) else {
                    return self.sem(format!("unknown type {type_name}"));
                };
                perform_cast(
                    &inner,
                    ty,
                    true,
                    self.strictness,
                    &self.cast_limits(),
                    self.coverage,
                    self.faults,
                )
            }
            Expr::Unary { op, expr } => self.eval_unary(*op, expr, ctx),
            Expr::Binary { left, op, right } => self.eval_binary(left, *op, right, ctx),
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, ctx)?;
                Ok(Evaluated {
                    value: is_null_result(&v.value, *negated),
                    provenance: Provenance::Operator,
                })
            }
            Expr::InList { expr, list, negated } => {
                let target = self.eval(expr, ctx)?;
                let mut saw_null = target.value.is_null();
                let mut found = false;
                for item in list {
                    let v = self.eval(item, ctx)?;
                    match target.value.sql_cmp(&v.value) {
                        Ok(Some(std::cmp::Ordering::Equal)) => {
                            found = true;
                            break;
                        }
                        Ok(None) => saw_null = true,
                        _ => {}
                    }
                }
                let value = if found {
                    Value::Boolean(!*negated)
                } else if saw_null {
                    Value::Null
                } else {
                    Value::Boolean(*negated)
                };
                Ok(Evaluated { value, provenance: Provenance::Operator })
            }
            Expr::Between { expr, low, high, negated } => {
                let v = self.eval(expr, ctx)?;
                let lo = self.eval(low, ctx)?;
                let hi = self.eval(high, ctx)?;
                let value = between_result(&v.value, &lo.value, &hi.value, *negated);
                Ok(Evaluated { value, provenance: Provenance::Operator })
            }
            Expr::Case { operand, branches, else_expr } => {
                let op_v = match operand {
                    Some(o) => Some(self.eval(o, ctx)?),
                    None => None,
                };
                for (when, then) in branches {
                    let w = self.eval(when, ctx)?;
                    let hit = match &op_v {
                        Some(o) => {
                            o.value.sql_cmp(&w.value).unwrap_or(None)
                                == Some(std::cmp::Ordering::Equal)
                        }
                        None => w.value.truthiness() == Some(true),
                    };
                    if hit {
                        return self.eval(then, ctx);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, ctx),
                    None => Ok(Evaluated {
                        value: Value::Null,
                        provenance: Provenance::Operator,
                    }),
                }
            }
            Expr::Row(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for i in items {
                    vals.push(self.eval(i, ctx)?.value);
                }
                Ok(Evaluated { value: Value::Row(vals), provenance: Provenance::Constructor })
            }
            Expr::ArrayLiteral(items) => {
                let mut vals = Vec::with_capacity(items.len());
                for i in items {
                    vals.push(self.eval(i, ctx)?.value);
                }
                Ok(Evaluated {
                    value: Value::Array(vals),
                    provenance: Provenance::Constructor,
                })
            }
            Expr::Subquery(q) => {
                if self.subquery_depth >= MAX_SUBQUERY_DEPTH {
                    return self.sem("subqueries nested too deeply");
                }
                self.subquery_depth += 1;
                let result = self.exec_select(q);
                self.subquery_depth -= 1;
                let (_, rows) = result?;
                match rows.len() {
                    0 => Ok(Evaluated {
                        value: Value::Null,
                        provenance: Provenance::Subquery {
                            inner: Box::new(Provenance::Literal),
                        },
                    }),
                    1 => {
                        let row = &rows[0];
                        if row.len() != 1 {
                            return self.sem("scalar subquery must return one column");
                        }
                        Ok(Evaluated {
                            value: row[0].value.clone(),
                            provenance: Provenance::Subquery {
                                inner: Box::new(row[0].provenance.clone()),
                            },
                        })
                    }
                    _ => self.sem("scalar subquery returned more than one row"),
                }
            }
            Expr::Exists(q) => {
                if self.subquery_depth >= MAX_SUBQUERY_DEPTH {
                    return self.sem("subqueries nested too deeply");
                }
                self.subquery_depth += 1;
                let result = self.exec_select(q);
                self.subquery_depth -= 1;
                let (_, rows) = result?;
                Ok(Evaluated {
                    value: Value::Boolean(!rows.is_empty()),
                    provenance: Provenance::Operator,
                })
            }
            Expr::IntervalLiteral { quantity, unit } => {
                let qv = self.eval(quantity, ctx)?;
                if qv.value.is_null() {
                    return Ok(Evaluated { value: Value::Null, provenance: Provenance::Operator });
                }
                let n = perform_cast(
                    &qv,
                    DataType::Integer,
                    false,
                    self.strictness,
                    &self.cast_limits(),
                    self.coverage,
                    self.faults,
                )?;
                let Value::Integer(n) = n.value else {
                    return self.sem("INTERVAL quantity must be an integer");
                };
                match soft_types::datetime::Interval::parse(n, unit) {
                    Ok(iv) => Ok(Evaluated {
                        value: Value::Interval(iv),
                        provenance: Provenance::Literal,
                    }),
                    Err(e) => Err(EngineError::Sql(SqlError::Semantic(e.to_string()))),
                }
            }
        }
    }

    fn eval_literal(&mut self, l: &Literal) -> Evaluated {
        Evaluated { value: literal_value(l), provenance: Provenance::Literal }
    }

    fn eval_column(&mut self, name: &str, ctx: RowCtx<'_>) -> Result<Evaluated, EngineError> {
        // Binding names are stored ASCII-lowercased, so a case-insensitive
        // compare is equivalent to folding `name` — without the per-lookup
        // String the fold used to allocate.
        match ctx.columns.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)) {
            Some((_, idx)) => match ctx.row {
                Some(row) => Ok(row
                    .get(*idx)
                    .cloned()
                    .unwrap_or(Evaluated::column(Value::Null))),
                // Empty group: every column reads as NULL.
                None => Ok(Evaluated::column(Value::Null)),
            },
            None => self.sem(format!("unknown column {name}")),
        }
    }

    fn eval_unary(
        &mut self,
        op: UnaryOp,
        expr: &Expr,
        ctx: RowCtx<'_>,
    ) -> Result<Evaluated, EngineError> {
        let inner = self.eval(expr, ctx)?;
        Ok(unary_op_result(op, inner))
    }

    fn eval_binary(
        &mut self,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
        ctx: RowCtx<'_>,
    ) -> Result<Evaluated, EngineError> {
        // Short-circuit three-valued AND/OR.
        if op == BinaryOp::And || op == BinaryOp::Or {
            let l = self.eval(left, ctx)?.value.truthiness();
            if op == BinaryOp::And && l == Some(false) {
                return Ok(Evaluated {
                    value: Value::Boolean(false),
                    provenance: Provenance::Operator,
                });
            }
            if op == BinaryOp::Or && l == Some(true) {
                return Ok(Evaluated {
                    value: Value::Boolean(true),
                    provenance: Provenance::Operator,
                });
            }
            let r = self.eval(right, ctx)?.value.truthiness();
            let value = match (op, l, r) {
                (BinaryOp::And, Some(a), Some(b)) => Value::Boolean(a && b),
                (BinaryOp::Or, Some(a), Some(b)) => Value::Boolean(a || b),
                (BinaryOp::And, _, Some(false)) => Value::Boolean(false),
                (BinaryOp::Or, _, Some(true)) => Value::Boolean(true),
                _ => Value::Null,
            };
            return Ok(Evaluated { value, provenance: Provenance::Operator });
        }
        let l = self.eval(left, ctx)?;
        let r = self.eval(right, ctx)?;
        let value = self.binary_op_value(op, &l.value, &r.value)?;
        Ok(Evaluated { value, provenance: Provenance::Operator })
    }

    /// Combines two already-evaluated operand values for every binary
    /// operator except the short-circuiting AND/OR — the single source of
    /// truth shared by the scalar row path and the columnar batch kernel.
    pub(crate) fn binary_op_value(
        &mut self,
        op: BinaryOp,
        l: &Value,
        r: &Value,
    ) -> Result<Value, EngineError> {
        match op {
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => {
                self.arith(op, l, r)
            }
            BinaryOp::Concat => Ok(match (l, r) {
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                (a, b) => Value::Text(format!("{}{}", a.render(), b.render())),
            }),
            BinaryOp::Like => self.like(l, r),
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => {
                let ord = l
                    .sql_cmp(r)
                    .map_err(|e| EngineError::Sql(SqlError::TypeError(e.to_string())))?;
                Ok(match ord {
                    None => Value::Null,
                    Some(o) => {
                        use std::cmp::Ordering::*;
                        let b = match op {
                            BinaryOp::Eq => o == Equal,
                            BinaryOp::NotEq => o != Equal,
                            BinaryOp::Lt => o == Less,
                            BinaryOp::LtEq => o != Greater,
                            BinaryOp::Gt => o == Greater,
                            BinaryOp::GtEq => o != Less,
                            _ => unreachable!("comparison ops only"),
                        };
                        Value::Boolean(b)
                    }
                })
            }
            BinaryOp::And | BinaryOp::Or => unreachable!("AND/OR short-circuit separately"),
        }
    }

    fn arith(&mut self, op: BinaryOp, l: &Value, r: &Value) -> Result<Value, EngineError> {
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        if matches!(l, Value::Star) || matches!(r, Value::Star) {
            return Err(EngineError::Sql(SqlError::TypeError(
                "'*' is not a valid operand".into(),
            )));
        }
        // Date/time arithmetic with intervals.
        if let (Value::Date(_) | Value::DateTime(_), Value::Interval(iv)) = (l, r) {
            let dt = match l {
                Value::Date(d) => {
                    soft_types::datetime::DateTime::new(*d, soft_types::datetime::Time::MIDNIGHT)
                }
                Value::DateTime(dt) => *dt,
                _ => unreachable!("matched above"),
            };
            let iv = if op == BinaryOp::Sub { iv.neg() } else { *iv };
            if op != BinaryOp::Add && op != BinaryOp::Sub {
                return Err(EngineError::Sql(SqlError::TypeError(
                    "only +/- between temporal and interval".into(),
                )));
            }
            return match dt.add_interval(&iv) {
                Ok(out) => Ok(Value::DateTime(out)),
                Err(_) => Ok(Value::Null),
            };
        }
        // Integer fast path.
        if let (Value::Integer(a), Value::Integer(b)) = (l, r) {
            match op {
                BinaryOp::Add => {
                    if let Some(v) = a.checked_add(*b) {
                        return Ok(Value::Integer(v));
                    }
                }
                BinaryOp::Sub => {
                    if let Some(v) = a.checked_sub(*b) {
                        return Ok(Value::Integer(v));
                    }
                }
                BinaryOp::Mul => {
                    if let Some(v) = a.checked_mul(*b) {
                        return Ok(Value::Integer(v));
                    }
                }
                BinaryOp::Rem => {
                    if *b == 0 {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Integer(a.wrapping_rem(*b)));
                }
                _ => {}
            }
        }
        // Float path when floats are involved or coercion is needed.
        let use_float = matches!(l, Value::Float(_))
            || matches!(r, Value::Float(_))
            || !matches!(l, Value::Integer(_) | Value::Decimal(_))
            || !matches!(r, Value::Integer(_) | Value::Decimal(_));
        if use_float {
            let a = l
                .as_f64()
                .unwrap_or_else(|| soft_types::value::parse_numeric_prefix(&l.render()));
            let b = r
                .as_f64()
                .unwrap_or_else(|| soft_types::value::parse_numeric_prefix(&r.render()));
            let v = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                BinaryOp::Rem => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a % b
                }
                _ => unreachable!("arith ops only"),
            };
            return Ok(Value::Float(v));
        }
        // Exact decimal path (covers int overflow promotion too).
        let to_dec = |v: &Value| -> Decimal {
            match v {
                Value::Integer(i) => Decimal::from_i64(*i),
                Value::Decimal(d) => d.clone(),
                _ => unreachable!("numeric checked above"),
            }
        };
        let a = to_dec(l);
        let b = to_dec(r);
        let result = match op {
            BinaryOp::Add => a.checked_add(&b),
            BinaryOp::Sub => a.checked_sub(&b),
            BinaryOp::Mul => a.checked_mul(&b),
            BinaryOp::Div => {
                if b.is_zero() {
                    return Ok(Value::Null);
                }
                a.checked_div(&b)
            }
            BinaryOp::Rem => {
                if b.is_zero() {
                    return Ok(Value::Null);
                }
                a.checked_rem(&b)
            }
            _ => unreachable!("arith ops only"),
        };
        match result {
            Ok(d) => Ok(Value::Decimal(d)),
            Err(e) => Err(EngineError::Sql(SqlError::Runtime(e.to_string()))),
        }
    }

    fn like(&mut self, l: &Value, r: &Value) -> Result<Value, EngineError> {
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        let s = l.render();
        let pattern = r.render();
        // Translate the LIKE pattern to a regex.
        let mut rx = String::from("^");
        for c in pattern.chars() {
            match c {
                '%' => rx.push_str(".*"),
                '_' => rx.push('.'),
                c if "\\.+*?()|[]{}^$".contains(c) => {
                    rx.push('\\');
                    rx.push(c);
                }
                c => rx.push(c),
            }
        }
        rx.push('$');
        let re = Regex::compile(&rx)
            .map_err(|e| EngineError::Sql(SqlError::Runtime(format!("bad LIKE pattern: {e}"))))?;
        match re.is_match(&s) {
            Ok(b) => Ok(Value::Boolean(b)),
            Err(e) => Err(EngineError::Sql(SqlError::Runtime(format!(
                "LIKE evaluation failed: {e}"
            )))),
        }
    }

    fn eval_function(
        &mut self,
        fx: &FunctionExpr,
        ctx: RowCtx<'_>,
    ) -> Result<Evaluated, EngineError> {
        // Copy the shared-reference fields out of `self` so the resolved
        // `&'e` borrows don't pin `self` (the old code cloned the def to
        // work around exactly this; the dispatch table makes the whole
        // lookup allocation-free instead).
        let registry = self.registry;
        let dispatch = self.dispatch;
        // Fast path: the prepare-time dispatch table, keyed by as-written
        // spelling. Fallback: the registry's allocation-free case-folded
        // lookup (non-prepared execution, or names synthesised mid-plan).
        let (called, def): (&'e str, &'e FunctionDef) =
            match dispatch.iter().find(|e| &*e.spelling == fx.name.as_str()) {
                Some(e) => (&e.lower, registry.def_at(e.index as usize)),
                None => match registry.resolve_entry(&fx.name) {
                    Some((key, _, def)) => (key, def),
                    None => return self.sem(format!("unknown function {}", fx.name)),
                },
            };
        let canonical = def.name;
        // Arity check (COUNT(*) arrives as one Star argument).
        let argc = fx.args.len();
        if argc < def.min_args || def.max_args.is_some_and(|m| argc > m) {
            return self.sem(format!(
                "{} expects {}..{} arguments, got {argc}",
                canonical,
                def.min_args,
                def.max_args.map(|m| m.to_string()).unwrap_or_else(|| "∞".into())
            ));
        }
        if fx.distinct && !def.is_aggregate() {
            return self.sem(format!("DISTINCT is only valid in aggregates, not {canonical}"));
        }
        match def.implementation {
            FunctionImpl::Scalar(imp) => {
                let mut args = Vec::with_capacity(argc);
                for a in &fx.args {
                    args.push(self.eval(a, ctx)?);
                }
                self.invoke_scalar(called, canonical, def, imp, &args)
            }
            FunctionImpl::Aggregate(imp) => {
                let Some(group) = ctx.group else {
                    return self.sem(format!("aggregate {canonical} is not allowed here"));
                };
                // Evaluate the argument expressions once per group row.
                let mut per_row: Vec<Vec<Evaluated>> = Vec::with_capacity(group.len());
                for row in group {
                    let row_ctx =
                        RowCtx { columns: ctx.columns, row: Some(row), group: None };
                    let mut args = Vec::with_capacity(argc);
                    for a in &fx.args {
                        if contains_aggregate_err(self.registry, a) {
                            return self.sem("aggregates cannot be nested");
                        }
                        args.push(self.eval(a, row_ctx)?);
                    }
                    per_row.push(args);
                }
                // Empty group with literal args: evaluate once against no
                // row so faults/coverage still see the argument shapes.
                if per_row.is_empty() {
                    let mut args = Vec::with_capacity(argc);
                    let no_row = RowCtx { columns: ctx.columns, row: None, group: None };
                    for a in &fx.args {
                        args.push(self.eval(a, no_row)?);
                    }
                    self.record_call(canonical, &args);
                    if let Some(fault) = self.faults.check_function(canonical, &args) {
                        self.coverage.record_function(called);
                        return Err(EngineError::Crash(fault.crash(Some(canonical))));
                    }
                } else {
                    for args in per_row.iter().take(8) {
                        self.record_call(canonical, args);
                    }
                    for args in &per_row {
                        if let Some(fault) = self.faults.check_function(canonical, args) {
                            self.coverage.record_function(called);
                            return Err(EngineError::Crash(fault.crash(Some(canonical))));
                        }
                    }
                }
                let mut mem = self.memory_used;
                let mut fn_ctx = FnCtx {
                    name: canonical,
                    strictness: self.strictness,
                    limits: &self.limits,
                    coverage: self.coverage,
                    faults: self.faults,
                    session: self.session,
                    memory_used: &mut mem,
                };
                let result = imp(&mut fn_ctx, &per_row, fx.distinct);
                self.memory_used = mem;
                match &result {
                    Err(EngineError::Sql(SqlError::TypeError(_))) => {}
                    _ => self.coverage.record_function(called),
                }
                let value = result?;
                Ok(Evaluated {
                    value,
                    provenance: Provenance::AggregateReturn { name: canonical.to_string() },
                })
            }
        }
    }

    pub(crate) fn record_call(&mut self, canonical: &str, args: &[Evaluated]) {
        use std::fmt::Write as _;
        // The feature keys are rebuilt in a buffer reused across calls —
        // their bytes (what `record_feature` hashes) are exactly the strings
        // the old per-key `format!`s produced, without the per-call
        // allocations on the campaign's hottest path.
        let mut key = std::mem::take(&mut self.feature_buf);
        let mut feat = |coverage: &mut Coverage, args: std::fmt::Arguments<'_>| {
            key.clear();
            key.write_fmt(args).expect("writing to a String cannot fail");
            coverage.record_feature(canonical, &key);
        };
        feat(&mut *self.coverage, format_args!("arity-{}", args.len().min(8)));
        for (i, a) in args.iter().enumerate().take(4) {
            feat(&mut *self.coverage, format_args!("arg{i}-{}", a.value.data_type()));
            for class in boundary::classify(&a.value) {
                feat(&mut *self.coverage, format_args!("arg{i}-{class:?}"));
            }
            // Provenance features: nested-function and cast-fed arguments
            // exercise different code paths.
            if a.provenance.from_function(None) {
                feat(&mut *self.coverage, format_args!("arg{i}-from-fn"));
            }
            if a.provenance.via_cast(None) {
                feat(&mut *self.coverage, format_args!("arg{i}-via-cast"));
            }
        }
        self.feature_buf = key;
    }

    fn invoke_scalar(
        &mut self,
        called: &str,
        canonical: &'static str,
        _def: &FunctionDef,
        imp: fn(&mut FnCtx<'_>, &[Evaluated]) -> Result<Value, EngineError>,
        args: &[Evaluated],
    ) -> Result<Evaluated, EngineError> {
        self.record_call(canonical, args);
        if let Some(fault) = self.faults.check_function(canonical, args) {
            // The function was genuinely reached — it counts as triggered.
            self.coverage.record_function(called);
            return Err(EngineError::Crash(fault.crash(Some(canonical))));
        }
        let mut mem = self.memory_used;
        let mut fn_ctx = FnCtx {
            name: canonical,
            strictness: self.strictness,
            limits: &self.limits,
            coverage: self.coverage,
            faults: self.faults,
            session: self.session,
            memory_used: &mut mem,
        };
        let result = imp(&mut fn_ctx, args);
        self.memory_used = mem;
        // Table 5 semantics: a function is *triggered* when its body
        // actually executed — an argument-coercion (type) failure means the
        // call never entered the function's own logic.
        match &result {
            Err(EngineError::Sql(SqlError::TypeError(_))) => {}
            _ => self.coverage.record_function(called),
        }
        let value = result?;
        // Wrong-result quirks corrupt the return value *after* the real
        // implementation ran — the crash plane above is untouched, and the
        // logic-bug oracles are what notice the corruption.
        let value = match self.faults.check_quirk(canonical, args) {
            Some(quirk) => quirk.apply(value),
            None => value,
        };
        Ok(Evaluated {
            value,
            provenance: Provenance::FunctionReturn { name: canonical.to_string() },
        })
    }
}

/// Shared unary-operator semantics over an already-evaluated operand — used
/// by the scalar row path and the columnar batch kernel.
pub(crate) fn unary_op_result(op: UnaryOp, inner: Evaluated) -> Evaluated {
    match op {
        UnaryOp::Plus => inner,
        UnaryOp::Neg => {
            let keep_literal = inner.provenance.is_literal();
            let value = match inner.value {
                Value::Null => Value::Null,
                Value::Integer(i) => match i.checked_neg() {
                    Some(v) => Value::Integer(v),
                    None => Value::Decimal(Decimal::from_i128(-(i as i128))),
                },
                Value::Decimal(d) => Value::Decimal(d.neg()),
                Value::Float(f) => Value::Float(-f),
                other => {
                    let f = soft_types::value::parse_numeric_prefix(&other.render());
                    Value::Float(-f)
                }
            };
            Evaluated {
                value,
                // A negated literal is still a boundary *literal*
                // (P1.1's -0.99999 must count as literal provenance).
                provenance: if keep_literal {
                    Provenance::Literal
                } else {
                    Provenance::Operator
                },
            }
        }
        UnaryOp::Not => {
            let value = match inner.value.truthiness() {
                None => Value::Null,
                Some(b) => Value::Boolean(!b),
            };
            Evaluated { value, provenance: Provenance::Operator }
        }
    }
}

/// The engine value of a literal as written — shared by the row evaluator
/// and the batch binder.
pub(crate) fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Boolean(*b),
        Literal::String(s) => Value::Text(s.clone()),
        Literal::HexBlob(b) => Value::Binary(b.clone()),
        Literal::Number(raw) => number_literal_value(raw),
    }
}

/// Shared `IS [NOT] NULL` semantics.
pub(crate) fn is_null_result(v: &Value, negated: bool) -> Value {
    Value::Boolean(v.is_null() != negated)
}

/// Shared `BETWEEN` semantics over already-evaluated operand values.
pub(crate) fn between_result(v: &Value, lo: &Value, hi: &Value, negated: bool) -> Value {
    let ge = v.sql_cmp(lo).unwrap_or(None);
    let le = v.sql_cmp(hi).unwrap_or(None);
    match (ge, le) {
        (Some(a), Some(b)) => {
            let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
            Value::Boolean(inside != negated)
        }
        _ => Value::Null,
    }
}

/// Parses a numeric literal, preferring exact representations:
/// integer → decimal → float (for digit counts beyond the decimal cap).
pub fn number_literal_value(raw: &str) -> Value {
    let plain_int = !raw.contains('.') && !raw.contains('e') && !raw.contains('E');
    if plain_int {
        if let Ok(i) = raw.parse::<i64>() {
            return Value::Integer(i);
        }
    }
    match raw.parse::<Decimal>() {
        Ok(d) => {
            if plain_int && d.total_digits() <= 18 {
                // Small ints always parse above; this keeps scale-0 parses
                // consistent if i64 parsing failed for format reasons.
                Value::Decimal(d)
            } else {
                Value::Decimal(d)
            }
        }
        // Beyond MAX_DIGITS the studied DBMSs fall back to doubles.
        Err(_) => Value::Float(soft_types::value::parse_numeric_prefix(raw)),
    }
}

/// AST-level aggregate detection. Does not recurse into subqueries, which
/// establish their own aggregate scope (`WHERE x = (SELECT MAX(..) ..)` is
/// legal).
pub(crate) fn contains_aggregate_err(registry: &FunctionRegistry, expr: &Expr) -> bool {
    fn walk(registry: &FunctionRegistry, e: &Expr) -> bool {
        match e {
            Expr::Function(fx) => {
                if registry.resolve(&fx.name).is_some_and(|d| d.is_aggregate()) {
                    return true;
                }
                fx.args.iter().any(|a| walk(registry, a))
            }
            Expr::Subquery(_) | Expr::Exists(_) => false,
            Expr::Cast { expr, .. } | Expr::Unary { expr, .. } => walk(registry, expr),
            Expr::Binary { left, right, .. } => walk(registry, left) || walk(registry, right),
            Expr::IsNull { expr, .. } => walk(registry, expr),
            Expr::InList { expr, list, .. } => {
                walk(registry, expr) || list.iter().any(|a| walk(registry, a))
            }
            Expr::Between { expr, low, high, .. } => {
                walk(registry, expr) || walk(registry, low) || walk(registry, high)
            }
            Expr::Row(items) | Expr::ArrayLiteral(items) => {
                items.iter().any(|a| walk(registry, a))
            }
            Expr::Case { operand, branches, else_expr } => {
                operand.as_deref().is_some_and(|o| walk(registry, o))
                    || branches
                        .iter()
                        .any(|(w, t)| walk(registry, w) || walk(registry, t))
                    || else_expr.as_deref().is_some_and(|x| walk(registry, x))
            }
            Expr::IntervalLiteral { quantity, .. } => walk(registry, quantity),
            Expr::Literal(_) | Expr::Column(_) | Expr::Star => false,
        }
    }
    walk(registry, expr)
}

/// Resolves a written type name (possibly parameterised or dialect-flavoured
/// like `Decimal256(45)`) to an engine type.
pub fn resolve_type_name(t: &TypeName) -> Option<DataType> {
    if let Some(dt) = DataType::parse_sql_name(&t.name) {
        return Some(dt);
    }
    let lower = t.name.to_ascii_lowercase();
    if lower.starts_with("decimal") || lower.starts_with("numeric") || lower.starts_with("dec") {
        return Some(DataType::Decimal);
    }
    if lower.starts_with("int") || lower.starts_with("uint") || lower.starts_with("bigint") {
        return Some(DataType::Integer);
    }
    if lower.starts_with("float") || lower.starts_with("double") {
        return Some(DataType::Float);
    }
    if lower.starts_with("varchar") || lower.starts_with("char") || lower.starts_with("string") {
        return Some(DataType::Text);
    }
    if lower.starts_with("datetime") || lower.starts_with("timestamp") {
        return Some(DataType::DateTime);
    }
    if lower.starts_with("varbinary") || lower.starts_with("binary") || lower.starts_with("blob")
    {
        return Some(DataType::Binary);
    }
    None
}

/// Common UNION column-type unification: pick the "wider" representation.
fn union_type(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    if a == Null {
        return b;
    }
    if b == Null || a == b {
        return a;
    }
    let rank = |t: DataType| match t {
        Boolean => 1,
        Integer => 2,
        Decimal => 3,
        Float => 4,
        _ => 9,
    };
    if a.is_numeric() && b.is_numeric() || a == Boolean || b == Boolean {
        return if rank(a) >= rank(b) { a } else { b };
    }
    // Mixed non-numeric types settle on text.
    Text
}

fn dedup_rows(rows: Vec<Vec<Evaluated>>) -> Vec<Vec<Evaluated>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let key: String =
            row.iter().map(|e| e.value.group_key()).collect::<Vec<_>>().join("\u{1}");
        if seen.insert(key) {
            out.push(row);
        }
    }
    out
}
