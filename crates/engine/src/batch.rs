//! Columnar batch execution: same-shape statements evaluated together.
//!
//! Campaign corpora are embarrassingly batchable — thousands of generated
//! statements share a handful of AST shapes and differ only in their boundary
//! literals. This module exploits that: statements are grouped by a
//! structural [`ShapeKey`], each group's literals are bound into
//! [`soft_types::column::ColumnVec`] argument columns, and the group is
//! evaluated node-by-node over whole columns instead of statement-by-
//! statement over single values.
//!
//! The contract is *exact scalar equivalence*: for every group member the
//! demultiplexed [`ExecOutcome`] — class, values, error message, crash
//! report — and every coverage/fault side effect is identical to what
//! [`crate::Engine::execute_prepared`] produces for that member alone. The
//! batch path is a throughput optimisation, never a semantics change; where
//! vectorisation cannot preserve semantics (volatile functions, columns,
//! subqueries, short-circuit operators at the node level) the statement or
//! node falls back to the scalar evaluator.
//!
//! How exactness is kept:
//!
//! - **Masking.** Serial execution aborts a statement at its first error.
//!   The batch keeps a per-row status; once a row errors, every later node
//!   skips it, so no extra coverage or faults are recorded for that row.
//! - **Node order.** Nodes are laid out in the serial evaluator's order
//!   (arguments left-to-right, depth-first, select items in sequence), so
//!   "first error wins" picks the same error the serial walk would.
//! - **Structural verification.** Groups are formed by a hash key; binding
//!   re-walks every member against the representative's plan and bails out
//!   (scalar fallback) on any mismatch, so a hash collision costs
//!   performance, never correctness.
//! - **Per-row state.** Function memory accounting and fallback-node
//!   evaluation thread each row's own `memory_used` through the shared
//!   executor, exactly as a fresh `Exec` per statement would.

use crate::engine::Prepared;
use crate::error::{EngineError, ExecOutcome, ResultSet, SqlError};
use crate::eval::{Evaluated, Provenance};
use crate::executor::{
    between_result, contains_aggregate_err, is_null_result, literal_value, resolve_type_name,
    unary_op_result, Exec, RowCtx,
};
use crate::registry::{perform_cast, FnCtx, FunctionImpl, FunctionRegistry};
use soft_parser::ast::{
    BinaryOp, Expr, Query, SelectBody, SelectItem, Statement, TypeName, UnaryOp,
};
use soft_types::boundary;
use soft_types::column::{ColumnArena, ColumnVec};
use soft_types::value::{DataType, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Functions whose results depend on or mutate session state. Batching
/// reorders evaluation across a shard window, so statements calling any of
/// these stay on the scalar path.
const VOLATILE: &[&str] =
    &["rand", "uuid", "last_insert_id", "nextval", "currval", "lastval", "setval"];

/// Smallest group size worth batching. Compiling and binding a plan costs a
/// few hundred nanoseconds per group regardless of member count; measured on
/// the bench corpora, groups of two lose more to that fixed cost than two
/// rows of columnar execution recover (0.96x vs serial), while groups of
/// five or more win 1.3x and up. Callers route smaller groups to the scalar
/// path — a pure policy choice: [`Engine::execute_batch_in`] itself stays
/// exact at any size.
///
/// [`Engine::execute_batch_in`]: crate::Engine::execute_batch_in
pub const MIN_BATCH_GROUP: usize = 3;

/// A structural fingerprint of a batchable statement.
///
/// Two statements with equal keys have (modulo hash collision, which binding
/// detects) the same AST shape — same operators, same function spellings
/// up to case, same arities — and differ only in literal values, so they can
/// share one compiled batch plan. `None`-keyed statements (columns,
/// subqueries, aggregates, volatile functions, non-SELECT, …) always take
/// the scalar path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeKey(u64);

/// Computes the shape key of a prepared statement, or `None` when the
/// statement is not batchable.
pub(crate) fn shape_key(registry: &FunctionRegistry, stmt: &Statement) -> Option<ShapeKey> {
    let q = batchable_query(registry, stmt)?;
    let mut h = DefaultHasher::new();
    q.items.len().hash(&mut h);
    for item in &q.items {
        if let SelectItem::Expr { expr, .. } = item {
            hash_expr(expr, &mut h);
        }
    }
    Some(ShapeKey(h.finish()))
}

/// The single scalar `Query` of a batchable statement: a `SELECT` of pure
/// expressions with no source rows and no row-set machinery.
fn batchable_query<'s>(registry: &FunctionRegistry, stmt: &'s Statement) -> Option<&'s Query> {
    let q = query_of(stmt)?;
    for item in &q.items {
        let SelectItem::Expr { expr, .. } = item else { return None };
        if contains_aggregate_err(registry, expr) || !batchable_expr(registry, expr) {
            return None;
        }
    }
    Some(q)
}

/// The clause-level shape of a batchable statement, without the recursive
/// expression walk — what member binding needs: `batchable_query` minus
/// [`batchable_expr`]/aggregate validation, which `bind` re-establishes
/// against the compiled plan.
fn query_of(stmt: &Statement) -> Option<&Query> {
    let Statement::Select(s) = stmt else { return None };
    if !s.order_by.is_empty() || s.limit.is_some() {
        return None;
    }
    let SelectBody::Query(q) = &s.body else { return None };
    if q.distinct
        || q.from.is_some()
        || q.where_clause.is_some()
        || !q.group_by.is_empty()
        || q.having.is_some()
        || q.items.is_empty()
    {
        return None;
    }
    Some(q)
}

/// Expression-level batchability: no row/catalog references, no subqueries,
/// every function resolvable, scalar and non-volatile.
fn batchable_expr(registry: &FunctionRegistry, e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Star => true,
        Expr::Column(_) | Expr::Subquery(_) | Expr::Exists(_) => false,
        Expr::Function(fx) => {
            let Some(def) = registry.resolve(&fx.name) else {
                // Unknown functions error before argument evaluation with a
                // message quoting the as-written spelling; cheapest to leave
                // them on the scalar path than to model that in a column.
                return false;
            };
            if def.is_aggregate() || VOLATILE.contains(&def.name) {
                return false;
            }
            fx.args.iter().all(|a| batchable_expr(registry, a))
        }
        Expr::Cast { expr, .. } | Expr::Unary { expr, .. } => batchable_expr(registry, expr),
        Expr::Binary { left, right, .. } => {
            batchable_expr(registry, left) && batchable_expr(registry, right)
        }
        Expr::IsNull { expr, .. } => batchable_expr(registry, expr),
        Expr::InList { expr, list, .. } => {
            batchable_expr(registry, expr) && list.iter().all(|a| batchable_expr(registry, a))
        }
        Expr::Between { expr, low, high, .. } => {
            batchable_expr(registry, expr)
                && batchable_expr(registry, low)
                && batchable_expr(registry, high)
        }
        Expr::Case { operand, branches, else_expr } => {
            operand.as_deref().is_none_or(|o| batchable_expr(registry, o))
                && branches
                    .iter()
                    .all(|(w, t)| batchable_expr(registry, w) && batchable_expr(registry, t))
                && else_expr.as_deref().is_none_or(|x| batchable_expr(registry, x))
        }
        Expr::Row(items) | Expr::ArrayLiteral(items) => {
            items.iter().all(|a| batchable_expr(registry, a))
        }
        Expr::IntervalLiteral { quantity, .. } => batchable_expr(registry, quantity),
    }
}

fn hash_lower(s: &str, h: &mut DefaultHasher) {
    for b in s.bytes() {
        b.to_ascii_lowercase().hash(h);
    }
    0xffu8.hash(h);
}

/// Hashes the structural shape of an expression: node tags, operator
/// discriminants, case-folded function names, arities and type names —
/// everything except the literal values themselves.
fn hash_expr(e: &Expr, h: &mut DefaultHasher) {
    match e {
        // Literal *kinds* are deliberately excluded: slots that mix e.g.
        // numbers and strings across members simply land in a Mixed column.
        Expr::Literal(_) => 1u8.hash(h),
        Expr::Star => 2u8.hash(h),
        Expr::Function(fx) => {
            3u8.hash(h);
            hash_lower(&fx.name, h);
            fx.distinct.hash(h);
            fx.args.len().hash(h);
            for a in &fx.args {
                hash_expr(a, h);
            }
        }
        Expr::Cast { expr, type_name, .. } => {
            4u8.hash(h);
            type_name.hash(h);
            hash_expr(expr, h);
        }
        Expr::Unary { op, expr } => {
            5u8.hash(h);
            std::mem::discriminant(op).hash(h);
            hash_expr(expr, h);
        }
        Expr::Binary { left, op, right } => {
            6u8.hash(h);
            std::mem::discriminant(op).hash(h);
            hash_expr(left, h);
            hash_expr(right, h);
        }
        Expr::IsNull { expr, negated } => {
            7u8.hash(h);
            negated.hash(h);
            hash_expr(expr, h);
        }
        Expr::InList { expr, list, negated } => {
            8u8.hash(h);
            negated.hash(h);
            list.len().hash(h);
            hash_expr(expr, h);
            for a in list {
                hash_expr(a, h);
            }
        }
        Expr::Between { expr, low, high, negated } => {
            9u8.hash(h);
            negated.hash(h);
            hash_expr(expr, h);
            hash_expr(low, h);
            hash_expr(high, h);
        }
        Expr::Case { operand, branches, else_expr } => {
            10u8.hash(h);
            operand.is_some().hash(h);
            branches.len().hash(h);
            else_expr.is_some().hash(h);
            if let Some(o) = operand {
                hash_expr(o, h);
            }
            for (w, t) in branches {
                hash_expr(w, h);
                hash_expr(t, h);
            }
            if let Some(x) = else_expr {
                hash_expr(x, h);
            }
        }
        Expr::Row(items) => {
            11u8.hash(h);
            items.len().hash(h);
            for a in items {
                hash_expr(a, h);
            }
        }
        Expr::ArrayLiteral(items) => {
            12u8.hash(h);
            items.len().hash(h);
            for a in items {
                hash_expr(a, h);
            }
        }
        Expr::IntervalLiteral { quantity, unit } => {
            13u8.hash(h);
            unit.hash(h);
            hash_expr(quantity, h);
        }
        // Non-batchable shapes never reach the hash, but keep them distinct
        // anyway so the function is total.
        Expr::Column(name) => {
            14u8.hash(h);
            hash_lower(name, h);
        }
        Expr::Subquery(_) => 15u8.hash(h),
        Expr::Exists(_) => 16u8.hash(h),
    }
}

/// Reusable scratch for the batch executor. One arena lives per shard (or
/// bench loop) so steady-state batches recycle every column, argument buffer
/// and index buffer instead of allocating per group.
#[derive(Default)]
pub struct BatchArena {
    cols: ColumnArena,
    args: Vec<Evaluated>,
    kids: Vec<usize>,
    srcs: Vec<Src>,
    status: Vec<Option<EngineError>>,
    mems: Vec<usize>,
}

impl BatchArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Where a node's per-row inputs come from during execution.
#[derive(Clone, Copy)]
enum Src {
    /// Child is `*`: the argument slot is pre-filled once, never reloaded.
    Star,
    /// Child has a shared column: load the value, provenance is pre-set.
    Shared,
    /// Child stores whole `Evaluated`s: move the row's value out.
    PerRow,
    /// Child never produces output (constant error); all rows are masked
    /// before this parent runs, so the slot is never read.
    Masked,
}

/// One step of a compiled batch plan, in serial evaluation order.
struct Node<'p> {
    kind: NodeKind<'p>,
    out: NodeOut,
}

enum NodeKind<'p> {
    /// A literal slot; binding pushes each member's value into `out`.
    Lit,
    /// Bare `*` (reaches functions as `Value::Star`).
    Star,
    /// Unary `+`: forwards its child untouched, exactly like the serial
    /// evaluator.
    Alias { child: usize },
    /// A structural error raised before argument evaluation (bad arity,
    /// scalar DISTINCT). `name`/`argc`/`distinct` re-verify members.
    ConstError { err: SqlError, name: &'p str, argc: usize, distinct: bool },
    /// A scalar function call.
    Func {
        children: Vec<usize>,
        /// As-written spelling (for bind verification).
        name: &'p str,
        distinct: bool,
        /// Interned lowercase spelling, what `record_function` sees.
        called: String,
        canonical: &'static str,
        imp: fn(&mut FnCtx<'_>, &[Evaluated]) -> Result<Value, EngineError>,
        /// Prefetched: any crash fault / quirk targets `canonical`.
        has_faults: bool,
        has_quirks: bool,
        /// Distinct argument signatures already fed to `record_call` — the
        /// per-call coverage features are a pure function of this key, so
        /// repeats are skipped. A linear scan over `Copy` keys beats a
        /// hash set at campaign group sizes (a handful of members, fewer
        /// distinct signatures).
        memo: Vec<CallKey>,
        /// `record_function` fired at least once (set-based, so once is
        /// exactly as observable as once-per-row).
        recorded: bool,
    },
    /// `CAST(child AS ty)`. The unknown-type error is pre-formatted; per
    /// serial semantics it is raised *after* the operand evaluates.
    Cast { child: usize, ty: Result<DataType, SqlError>, type_name: &'p TypeName },
    /// Unary `-` / `NOT`.
    Unary { child: usize, op: UnaryOp },
    /// Any binary operator except `AND`/`OR` (which short-circuit and so
    /// run as fallback nodes).
    Binary { left: usize, right: usize, op: BinaryOp },
    IsNull { child: usize, negated: bool },
    Between { expr: usize, low: usize, high: usize, negated: bool },
    RowCtor { children: Vec<usize> },
    ArrayCtor { children: Vec<usize> },
    /// Control-flow subtrees (`AND`/`OR`/`CASE`/`IN`/`INTERVAL`): each
    /// member's own expression is evaluated by the serial evaluator with
    /// that row's memory state — exact by construction.
    Fallback { members: Vec<&'p Expr> },
}

enum NodeOut {
    /// No output storage (`Star`, `Alias`, `ConstError`).
    None,
    /// A typed column plus one provenance shared by every row.
    Shared { col: ColumnVec, prov: Provenance },
    /// Whole per-row `Evaluated`s (casts, fallbacks: provenance varies).
    PerRow(Vec<Option<Evaluated>>),
}

/// The argument-signature key that determines every feature `record_call`
/// would emit: arity plus, for the first four arguments, data type, boundary
/// classes and provenance flags. Everything is packed into `Copy` scalars —
/// boundary classes as the [`boundary::class_bits`] bitmask — so building
/// and hashing a key on the per-row hot path allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CallKey {
    arity: usize,
    args: [Option<ArgKey>; 4],
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ArgKey {
    ty: DataType,
    class_bits: u32,
    from_fn: bool,
    via_cast: bool,
}

fn call_key(args: &[Evaluated]) -> CallKey {
    let mut keyed: [Option<ArgKey>; 4] = [None, None, None, None];
    for (i, a) in args.iter().enumerate().take(4) {
        keyed[i] = Some(ArgKey {
            ty: a.value.data_type(),
            class_bits: boundary::class_bits(&a.value),
            from_fn: a.provenance.from_function(None),
            via_cast: a.provenance.via_cast(None),
        });
    }
    CallKey { arity: args.len(), args: keyed }
}

/// Executes a group of same-shape prepared statements as one batch.
///
/// Returns `None` (with no side effects) when the group is not batchable —
/// the caller falls back to per-statement execution. On `Some`, the
/// outcomes are exactly what `execute_prepared` would have produced for
/// each member, in member order.
pub(crate) fn execute_batch(
    exec: &mut Exec<'_>,
    members: &[&Prepared],
    arena: &mut BatchArena,
) -> Option<Vec<ExecOutcome>> {
    let mut nodes: Vec<Node> = Vec::new();
    let result = run_batch(exec, members, arena, &mut nodes);
    // Columns go back to the pool on every exit path, including bind
    // failures.
    for node in nodes {
        if let NodeOut::Shared { col, .. } = node.out {
            arena.cols.put_column(col);
        }
    }
    result
}

fn run_batch<'p>(
    exec: &mut Exec<'_>,
    members: &[&'p Prepared],
    arena: &mut BatchArena,
    nodes: &mut Vec<Node<'p>>,
) -> Option<Vec<ExecOutcome>> {
    let n = members.len();
    if n == 0 {
        return Some(Vec::new());
    }
    if exec.limits.max_rows < 1 {
        // The scalar path would report a resource limit for the single
        // output row; not worth modelling here.
        return None;
    }
    let BatchArena { cols, args, kids, srcs, status, mems } = arena;

    // Compile the representative's items into a plan. The representative is
    // validated in full (every expression batchable); other members are only
    // clause-checked here because `bind` re-verifies their structure against
    // the compiled plan node for node — the one plan shape binding cannot
    // see through is a `Fallback` subtree, and that arm re-checks
    // batchability itself.
    let rep_q = batchable_query(exec.registry, &members[0].stmt)?;
    let mut roots = Vec::with_capacity(rep_q.items.len());
    for item in &rep_q.items {
        let SelectItem::Expr { expr, .. } = item else { return None };
        roots.push(compile(exec, nodes, cols, expr)?);
    }
    // Output column names come from the representative. For unaliased
    // expressions the serial path renders each member's own text; nothing
    // downstream (signatures, reports, journals) reads column names of
    // generated statements, so one rendering per group is safe — see
    // ARCHITECTURE.md.
    let columns: Vec<String> = rep_q
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| Exec::output_name(item, i))
        .collect();

    // Bind every member against the plan, filling literal columns and
    // fallback member lists. Any structural mismatch aborts the batch.
    for m in members {
        let mq = query_of(&m.stmt)?;
        if mq.items.len() != roots.len() {
            return None;
        }
        for (&root, item) in roots.iter().zip(&mq.items) {
            let SelectItem::Expr { expr, .. } = item else { return None };
            bind(exec.registry, nodes, root, expr)?;
        }
    }

    // Execute. From here on nothing can fail structurally: every row either
    // completes or carries its own serial-equivalent error.
    status.clear();
    status.resize_with(n, || None);
    mems.clear();
    mems.resize(n, 0);
    for node in nodes.iter_mut() {
        if let NodeOut::PerRow(v) = &mut node.out {
            v.clear();
            v.resize_with(n, || None);
        }
    }

    for i in 0..nodes.len() {
        let (prev, rest) = nodes.split_at_mut(i);
        let Node { kind, out } = &mut rest[0];
        match kind {
            NodeKind::Lit | NodeKind::Star | NodeKind::Alias { .. } => {}
            NodeKind::ConstError { err, .. } => {
                for s in status.iter_mut() {
                    if s.is_none() {
                        *s = Some(EngineError::Sql(err.clone()));
                    }
                }
            }
            NodeKind::Fallback { members } => {
                let NodeOut::PerRow(outv) = out else { unreachable!("fallback stores per-row") };
                for (r, slot) in outv.iter_mut().enumerate() {
                    if status[r].is_some() {
                        continue;
                    }
                    exec.memory_used = mems[r];
                    match exec.eval(members[r], RowCtx::EMPTY) {
                        Ok(ev) => *slot = Some(ev),
                        Err(e) => status[r] = Some(e),
                    }
                    mems[r] = exec.memory_used;
                }
            }
            NodeKind::Cast { child, ty, .. } => {
                prep_children(prev, std::slice::from_ref(child), kids, srcs, args);
                let NodeOut::PerRow(outv) = out else { unreachable!("cast stores per-row") };
                for (r, slot) in outv.iter_mut().enumerate() {
                    if status[r].is_some() {
                        continue;
                    }
                    load_row(prev, kids, srcs, r, args);
                    // Serial order: operand first, then the type check.
                    let ty = match ty {
                        Ok(t) => *t,
                        Err(e) => {
                            status[r] = Some(EngineError::Sql(e.clone()));
                            continue;
                        }
                    };
                    match perform_cast(
                        &args[0],
                        ty,
                        true,
                        exec.strictness,
                        &exec.cast_limits(),
                        exec.coverage,
                        exec.faults,
                    ) {
                        Ok(ev) => *slot = Some(ev),
                        Err(e) => status[r] = Some(e),
                    }
                }
            }
            NodeKind::Func {
                children,
                called,
                canonical,
                imp,
                has_faults,
                has_quirks,
                memo,
                recorded,
                ..
            } => {
                prep_children(prev, children, kids, srcs, args);
                let k = children.len();
                let NodeOut::Shared { col, .. } = out else { unreachable!("func output column") };
                for r in 0..n {
                    if status[r].is_some() {
                        col.push(&Value::Null);
                        continue;
                    }
                    load_row(prev, kids, srcs, r, args);
                    let call_args = &args[..k];
                    let key = call_key(call_args);
                    if !memo.contains(&key) {
                        memo.push(key);
                        exec.record_call(canonical, call_args);
                    }
                    if *has_faults {
                        if let Some(fault) = exec.faults.check_function(canonical, call_args) {
                            if !*recorded {
                                exec.coverage.record_function(called);
                                *recorded = true;
                            }
                            status[r] = Some(EngineError::Crash(fault.crash(Some(canonical))));
                            col.push(&Value::Null);
                            continue;
                        }
                    }
                    let mut mem = mems[r];
                    let mut fn_ctx = FnCtx {
                        name: canonical,
                        strictness: exec.strictness,
                        limits: &exec.limits,
                        coverage: exec.coverage,
                        faults: exec.faults,
                        session: exec.session,
                        memory_used: &mut mem,
                    };
                    let result = imp(&mut fn_ctx, call_args);
                    mems[r] = mem;
                    // Table 5 semantics, identical to `invoke_scalar`: a
                    // coercion failure means the body never ran.
                    match &result {
                        Err(EngineError::Sql(SqlError::TypeError(_))) => {}
                        _ => {
                            if !*recorded {
                                exec.coverage.record_function(called);
                                *recorded = true;
                            }
                        }
                    }
                    match result {
                        Ok(value) => {
                            let value = if *has_quirks {
                                match exec.faults.check_quirk(canonical, call_args) {
                                    Some(quirk) => quirk.apply(value),
                                    None => value,
                                }
                            } else {
                                value
                            };
                            col.push_owned(value);
                        }
                        Err(e) => {
                            status[r] = Some(e);
                            col.push(&Value::Null);
                        }
                    }
                }
            }
            NodeKind::Unary { child, op } => {
                prep_children(prev, std::slice::from_ref(child), kids, srcs, args);
                let op = *op;
                per_row_or_shared(out, status, |r| {
                    load_row(prev, kids, srcs, r, args);
                    let inner = std::mem::replace(&mut args[0], Evaluated::literal(Value::Null));
                    unary_op_result(op, inner)
                });
            }
            NodeKind::Binary { left, right, op } => {
                let pair = [*left, *right];
                prep_children(prev, &pair, kids, srcs, args);
                let op = *op;
                let NodeOut::Shared { col, .. } = out else { unreachable!("binary output column") };
                for r in 0..n {
                    if status[r].is_some() {
                        col.push(&Value::Null);
                        continue;
                    }
                    load_row(prev, kids, srcs, r, args);
                    match exec.binary_op_value(op, &args[0].value, &args[1].value) {
                        Ok(v) => col.push_owned(v),
                        Err(e) => {
                            status[r] = Some(e);
                            col.push(&Value::Null);
                        }
                    }
                }
            }
            NodeKind::IsNull { child, negated } => {
                prep_children(prev, std::slice::from_ref(child), kids, srcs, args);
                let negated = *negated;
                let NodeOut::Shared { col, .. } = out else { unreachable!("isnull output column") };
                for r in 0..n {
                    if status[r].is_some() {
                        col.push(&Value::Null);
                        continue;
                    }
                    load_row(prev, kids, srcs, r, args);
                    col.push_owned(is_null_result(&args[0].value, negated));
                }
            }
            NodeKind::Between { expr, low, high, negated } => {
                let trio = [*expr, *low, *high];
                prep_children(prev, &trio, kids, srcs, args);
                let negated = *negated;
                let NodeOut::Shared { col, .. } = out else { unreachable!("between output column") };
                for r in 0..n {
                    if status[r].is_some() {
                        col.push(&Value::Null);
                        continue;
                    }
                    load_row(prev, kids, srcs, r, args);
                    col.push_owned(between_result(
                        &args[0].value,
                        &args[1].value,
                        &args[2].value,
                        negated,
                    ));
                }
            }
            ctor @ (NodeKind::RowCtor { .. } | NodeKind::ArrayCtor { .. }) => {
                let is_row = matches!(ctor, NodeKind::RowCtor { .. });
                let (NodeKind::RowCtor { children } | NodeKind::ArrayCtor { children }) = ctor
                else {
                    unreachable!()
                };
                prep_children(prev, children, kids, srcs, args);
                let k = children.len();
                let NodeOut::Shared { col, .. } = out else { unreachable!("ctor output column") };
                for r in 0..n {
                    if status[r].is_some() {
                        col.push(&Value::Null);
                        continue;
                    }
                    load_row(prev, kids, srcs, r, args);
                    let vals: Vec<Value> = args[..k]
                        .iter_mut()
                        .map(|a| std::mem::replace(&mut a.value, Value::Null))
                        .collect();
                    col.push_owned(if is_row { Value::Row(vals) } else { Value::Array(vals) });
                }
            }
        }
    }

    // Demultiplex to per-statement outcomes.
    let mut outcomes = Vec::with_capacity(n);
    for (r, s) in status.iter_mut().enumerate() {
        match s.take() {
            Some(EngineError::Sql(e)) => outcomes.push(ExecOutcome::Error(e)),
            Some(EngineError::Crash(c)) => outcomes.push(ExecOutcome::Crash(c)),
            None => {
                let mut row = Vec::with_capacity(roots.len());
                for &root in &roots {
                    let idx = resolve_alias(nodes, root);
                    let value = match &mut nodes[idx] {
                        Node { kind: NodeKind::Star, .. } => Value::Star,
                        Node { out: NodeOut::Shared { col, .. }, .. } => col.take_at(r),
                        Node { out: NodeOut::PerRow(v), .. } => {
                            v[r].take().map(|e| e.value).unwrap_or(Value::Null)
                        }
                        _ => unreachable!("root node without output"),
                    };
                    row.push(value);
                }
                outcomes
                    .push(ExecOutcome::Rows(ResultSet { columns: columns.clone(), rows: vec![row] }));
            }
        }
    }
    Some(outcomes)
}

/// Compiles one expression subtree into `nodes`, returning its node index.
/// Children are pushed before parents, arguments left to right, so a linear
/// walk over `nodes` evaluates in exactly the serial order.
fn compile<'p>(
    exec: &Exec<'_>,
    nodes: &mut Vec<Node<'p>>,
    cols: &mut ColumnArena,
    e: &'p Expr,
) -> Option<usize> {
    let node = match e {
        Expr::Literal(_) => Node {
            kind: NodeKind::Lit,
            out: NodeOut::Shared { col: cols.take_column(), prov: Provenance::Literal },
        },
        Expr::Star => Node { kind: NodeKind::Star, out: NodeOut::None },
        Expr::Column(_) | Expr::Subquery(_) | Expr::Exists(_) => return None,
        Expr::Function(fx) => {
            let (called, def) =
                match exec.dispatch.iter().find(|en| &*en.spelling == fx.name.as_str()) {
                    Some(en) => (en.lower.to_string(), exec.registry.def_at(en.index as usize)),
                    None => match exec.registry.resolve_entry(&fx.name) {
                        Some((key, _, def)) => (key.to_string(), def),
                        None => return None,
                    },
                };
            let canonical = def.name;
            let argc = fx.args.len();
            if argc < def.min_args || def.max_args.is_some_and(|m| argc > m) {
                // Raised before argument evaluation, so children are not
                // compiled — matching the serial walk, which records nothing
                // for the arguments of an arity error.
                let err = SqlError::Semantic(format!(
                    "{} expects {}..{} arguments, got {argc}",
                    canonical,
                    def.min_args,
                    def.max_args.map(|m| m.to_string()).unwrap_or_else(|| "∞".into())
                ));
                Node {
                    kind: NodeKind::ConstError {
                        err,
                        name: &fx.name,
                        argc,
                        distinct: fx.distinct,
                    },
                    out: NodeOut::None,
                }
            } else if fx.distinct {
                // Aggregates were already rejected by the batchability gate,
                // so DISTINCT here is always the scalar-DISTINCT error.
                let err = SqlError::Semantic(format!(
                    "DISTINCT is only valid in aggregates, not {canonical}"
                ));
                Node {
                    kind: NodeKind::ConstError {
                        err,
                        name: &fx.name,
                        argc,
                        distinct: fx.distinct,
                    },
                    out: NodeOut::None,
                }
            } else {
                let FunctionImpl::Scalar(imp) = &def.implementation else { return None };
                let imp = *imp;
                let mut children = Vec::with_capacity(argc);
                for a in &fx.args {
                    children.push(compile(exec, nodes, cols, a)?);
                }
                Node {
                    kind: NodeKind::Func {
                        children,
                        name: &fx.name,
                        distinct: fx.distinct,
                        called,
                        canonical,
                        imp,
                        has_faults: exec.faults.has_function_faults(canonical),
                        has_quirks: exec.faults.has_quirks_for(canonical),
                        memo: Vec::new(),
                        recorded: false,
                    },
                    out: NodeOut::Shared {
                        col: out_col(cols),
                        prov: Provenance::FunctionReturn { name: canonical.to_string() },
                    },
                }
            }
        }
        Expr::Cast { expr, type_name, .. } => {
            let child = compile(exec, nodes, cols, expr)?;
            let ty = resolve_type_name(type_name)
                .ok_or_else(|| SqlError::Semantic(format!("unknown type {type_name}")));
            Node { kind: NodeKind::Cast { child, ty, type_name }, out: NodeOut::PerRow(Vec::new()) }
        }
        Expr::Unary { op: UnaryOp::Plus, expr } => {
            let child = compile(exec, nodes, cols, expr)?;
            Node { kind: NodeKind::Alias { child }, out: NodeOut::None }
        }
        Expr::Unary { op, expr } => {
            let child = compile(exec, nodes, cols, expr)?;
            let out = match shared_prov(nodes, child) {
                // The result provenance of `-x`/`NOT x` is a pure function
                // of the operand's provenance; when that is row-invariant
                // the output can live in a typed column.
                Some(prov) => {
                    let prov = match op {
                        UnaryOp::Neg if prov.is_literal() => Provenance::Literal,
                        _ => Provenance::Operator,
                    };
                    NodeOut::Shared { col: out_col(cols), prov }
                }
                None => NodeOut::PerRow(Vec::new()),
            };
            Node { kind: NodeKind::Unary { child, op: *op }, out }
        }
        Expr::Binary { left, op, right }
            if !matches!(op, BinaryOp::And | BinaryOp::Or) =>
        {
            let l = compile(exec, nodes, cols, left)?;
            let r = compile(exec, nodes, cols, right)?;
            Node {
                kind: NodeKind::Binary { left: l, right: r, op: *op },
                out: NodeOut::Shared { col: out_col(cols), prov: operator_prov(*op) },
            }
        }
        Expr::IsNull { expr, negated } => {
            let child = compile(exec, nodes, cols, expr)?;
            Node {
                kind: NodeKind::IsNull { child, negated: *negated },
                out: NodeOut::Shared { col: out_col(cols), prov: Provenance::Operator },
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let e = compile(exec, nodes, cols, expr)?;
            let lo = compile(exec, nodes, cols, low)?;
            let hi = compile(exec, nodes, cols, high)?;
            Node {
                kind: NodeKind::Between { expr: e, low: lo, high: hi, negated: *negated },
                out: NodeOut::Shared { col: out_col(cols), prov: Provenance::Operator },
            }
        }
        Expr::Row(items) => {
            let mut children = Vec::with_capacity(items.len());
            for a in items {
                children.push(compile(exec, nodes, cols, a)?);
            }
            Node {
                kind: NodeKind::RowCtor { children },
                out: NodeOut::Shared { col: out_col(cols), prov: Provenance::Constructor },
            }
        }
        Expr::ArrayLiteral(items) => {
            let mut children = Vec::with_capacity(items.len());
            for a in items {
                children.push(compile(exec, nodes, cols, a)?);
            }
            Node {
                kind: NodeKind::ArrayCtor { children },
                out: NodeOut::Shared { col: out_col(cols), prov: Provenance::Constructor },
            }
        }
        // Short-circuit / control-flow shapes: per-row serial evaluation.
        Expr::Binary { .. }
        | Expr::InList { .. }
        | Expr::Case { .. }
        | Expr::IntervalLiteral { .. } => {
            Node { kind: NodeKind::Fallback { members: Vec::new() }, out: NodeOut::PerRow(Vec::new()) }
        }
    };
    nodes.push(node);
    Some(nodes.len() - 1)
}

/// Binary results are operator provenance in the serial evaluator,
/// independent of operands.
fn operator_prov(_op: BinaryOp) -> Provenance {
    Provenance::Operator
}

/// An *output* column: `Mixed`-backed so owned results are moved in by
/// `push_owned` and moved back out by `take_at`/`take_into`. Literal input
/// columns stay typed (they are filled by copying from the AST anyway);
/// output values are produced owned and consumed exactly once, and for
/// boundary-length strings the typed heap's copy-in/allocate-out round trip
/// costs more than the evaluation it stores.
fn out_col(cols: &mut ColumnArena) -> ColumnVec {
    let mut col = cols.take_column();
    col.make_mixed();
    col
}

/// Follows `Alias` (unary `+`) chains to the producing node.
fn resolve_alias(nodes: &[Node<'_>], mut i: usize) -> usize {
    while let NodeKind::Alias { child } = &nodes[i].kind {
        i = *child;
    }
    i
}

/// The row-invariant provenance of a node's output, if it has one.
fn shared_prov(nodes: &[Node<'_>], i: usize) -> Option<Provenance> {
    let i = resolve_alias(nodes, i);
    match &nodes[i].kind {
        NodeKind::Star => Some(Provenance::Star),
        _ => match &nodes[i].out {
            NodeOut::Shared { prov, .. } => Some(prov.clone()),
            _ => None,
        },
    }
}

/// Binds one member expression against the compiled plan node, verifying
/// structure in lockstep and appending per-member data (literal values,
/// fallback expressions). `None` means the member does not actually match
/// the representative's shape (hash collision) — the whole batch aborts.
///
/// Children always precede their parent in `nodes` (postorder compilation),
/// so splitting the slice at `idx` lets the recursion borrow the child
/// region while the parent node is held — no child-index buffers, no
/// allocation per member.
fn bind<'p>(
    registry: &FunctionRegistry,
    nodes: &mut [Node<'p>],
    idx: usize,
    e: &'p Expr,
) -> Option<()> {
    let (prev, rest) = nodes.split_at_mut(idx);
    let node = &mut rest[0];
    match (&mut node.kind, e) {
        (NodeKind::Lit, Expr::Literal(l)) => {
            let v = literal_value(l);
            if let NodeOut::Shared { col, .. } = &mut node.out {
                col.push_owned(v);
            }
            Some(())
        }
        (NodeKind::Star, Expr::Star) => Some(()),
        (NodeKind::Alias { child }, Expr::Unary { op: UnaryOp::Plus, expr }) => {
            bind(registry, prev, *child, expr)
        }
        (NodeKind::ConstError { name, argc, distinct, .. }, Expr::Function(fx)) => {
            // The error message depends only on the canonical name and the
            // shape fields checked here, so equal shapes yield byte-equal
            // errors.
            if !fx.name.eq_ignore_ascii_case(name)
                || fx.args.len() != *argc
                || fx.distinct != *distinct
            {
                return None;
            }
            Some(())
        }
        (NodeKind::Func { children, name, distinct, .. }, Expr::Function(fx)) => {
            if !fx.name.eq_ignore_ascii_case(name)
                || fx.distinct != *distinct
                || fx.args.len() != children.len()
            {
                return None;
            }
            for (&c, a) in children.iter().zip(&fx.args) {
                bind(registry, prev, c, a)?;
            }
            Some(())
        }
        (NodeKind::Cast { child, type_name, .. }, Expr::Cast { expr, type_name: tn, .. }) => {
            if tn != *type_name {
                return None;
            }
            bind(registry, prev, *child, expr)
        }
        (NodeKind::Unary { child, op }, Expr::Unary { op: o, expr }) => {
            if o != op {
                return None;
            }
            bind(registry, prev, *child, expr)
        }
        (NodeKind::Binary { left, right, op }, Expr::Binary { left: l, op: o, right: r }) => {
            if o != op {
                return None;
            }
            bind(registry, prev, *left, l)?;
            bind(registry, prev, *right, r)
        }
        (NodeKind::IsNull { child, negated }, Expr::IsNull { expr, negated: ng }) => {
            if ng != negated {
                return None;
            }
            bind(registry, prev, *child, expr)
        }
        (
            NodeKind::Between { expr: xe, low, high, negated },
            Expr::Between { expr, low: lo, high: hi, negated: ng },
        ) => {
            if ng != negated {
                return None;
            }
            bind(registry, prev, *xe, expr)?;
            bind(registry, prev, *low, lo)?;
            bind(registry, prev, *high, hi)
        }
        (NodeKind::RowCtor { children }, Expr::Row(items))
        | (NodeKind::ArrayCtor { children }, Expr::ArrayLiteral(items)) => {
            if items.len() != children.len() {
                return None;
            }
            for (&c, a) in children.iter().zip(items) {
                bind(registry, prev, c, a)?;
            }
            Some(())
        }
        (NodeKind::Fallback { members }, e) => {
            // Whole-subtree fallback: the member's own expression runs
            // through the serial evaluator. Binding cannot see through the
            // subtree structurally, so re-check batchability here — a shape
            // hash collision must never smuggle a volatile call or column
            // reference into a batch.
            if !batchable_expr(registry, e) {
                return None;
            }
            members.push(e);
            Some(())
        }
        _ => None,
    }
}

/// Resolves a node's children once per node: alias chains are followed, each
/// child's source kind is classified, and row-invariant argument slots
/// (provenance, `*`) are pre-filled so the row loop only moves values.
fn prep_children(
    prev: &[Node<'_>],
    children: &[usize],
    kids: &mut Vec<usize>,
    srcs: &mut Vec<Src>,
    args: &mut Vec<Evaluated>,
) {
    kids.clear();
    srcs.clear();
    if args.len() < children.len() {
        args.resize_with(children.len(), || Evaluated::literal(Value::Null));
    }
    for (j, &c) in children.iter().enumerate() {
        let c = resolve_alias(prev, c);
        kids.push(c);
        match &prev[c].kind {
            NodeKind::Star => {
                args[j] = Evaluated { value: Value::Star, provenance: Provenance::Star };
                srcs.push(Src::Star);
            }
            _ => match &prev[c].out {
                NodeOut::Shared { prov, .. } => {
                    args[j].provenance = prov.clone();
                    srcs.push(Src::Shared);
                }
                NodeOut::PerRow(_) => srcs.push(Src::PerRow),
                NodeOut::None => srcs.push(Src::Masked),
            },
        }
    }
}

/// Loads row `r`'s argument values into the scratch slots prepared by
/// [`prep_children`].
fn load_row(
    prev: &mut [Node<'_>],
    kids: &[usize],
    srcs: &[Src],
    r: usize,
    args: &mut [Evaluated],
) {
    for (j, (&c, src)) in kids.iter().zip(srcs).enumerate() {
        match src {
            Src::Star | Src::Masked => {}
            Src::Shared => {
                if let NodeOut::Shared { col, .. } = &mut prev[c].out {
                    col.take_into(r, &mut args[j].value);
                }
            }
            Src::PerRow => {
                if let NodeOut::PerRow(v) = &mut prev[c].out {
                    if let Some(ev) = v[r].take() {
                        args[j] = ev;
                    }
                }
            }
        }
    }
}

/// Runs an infallible per-row computation, routing the result to the node's
/// output storage (shared column when the node's provenance is
/// row-invariant, per-row slots otherwise). Rows already carrying an error
/// are skipped with a placeholder push so column offsets stay aligned.
fn per_row_or_shared(
    out: &mut NodeOut,
    status: &mut [Option<EngineError>],
    mut f: impl FnMut(usize) -> Evaluated,
) {
    match out {
        NodeOut::Shared { col, .. } => {
            for (r, s) in status.iter_mut().enumerate() {
                if s.is_some() {
                    col.push(&Value::Null);
                    continue;
                }
                col.push_owned(f(r).value);
            }
        }
        NodeOut::PerRow(v) => {
            for (r, (slot, s)) in v.iter_mut().zip(status.iter_mut()).enumerate() {
                if s.is_some() {
                    continue;
                }
                *slot = Some(f(r));
            }
        }
        NodeOut::None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::error::{CrashKind, Stage};
    use crate::fault::{FaultSet, FaultSite, FaultSpec, PatternId, Trigger, ValuePred};
    use crate::functions;
    use soft_types::category::FunctionCategory;

    fn plain() -> Engine {
        Engine::with_default_functions(EngineConfig::default())
    }

    fn faulted() -> Engine {
        let mut registry = FunctionRegistry::new();
        functions::install_all(&mut registry);
        functions::install_common_aliases(&mut registry);
        let spec = FaultSpec {
            id: "batch-test-abs".into(),
            site: FaultSite::Function("abs".into()),
            kind: CrashKind::SegmentationViolation,
            stage: Stage::Execution,
            trigger: Trigger::Arg { index: Some(0), pred: ValuePred::IntEquals(42) },
            category: FunctionCategory::Math,
            pattern: PatternId::P1_1,
            fixed: false,
            description: "test fault".into(),
        };
        Engine::new(EngineConfig::default(), registry, FaultSet::new(vec![spec]))
    }

    /// Column names of unaliased items are rendered from the group
    /// representative; everything else must match byte for byte.
    fn strip_columns(o: ExecOutcome) -> ExecOutcome {
        match o {
            ExecOutcome::Rows(mut rs) => {
                rs.columns.clear();
                ExecOutcome::Rows(rs)
            }
            other => other,
        }
    }

    fn assert_equiv_with(mk: impl Fn() -> Engine, sqls: &[&str]) {
        let mut serial = mk();
        let mut batch = mk();
        let prepared: Vec<Prepared> =
            sqls.iter().map(|s| batch.prepare(s).expect("prepare")).collect();
        let key = batch.shape_key(&prepared[0]).expect("first statement batchable");
        for (p, s) in prepared.iter().zip(sqls) {
            assert_eq!(batch.shape_key(p), Some(key), "shape of {s}");
        }
        let refs: Vec<&Prepared> = prepared.iter().collect();
        let got = batch.execute_batch(&refs).expect("group executes as a batch");
        let want: Vec<ExecOutcome> =
            prepared.iter().map(|p| serial.execute_prepared(p)).collect();
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                strip_columns(g.clone()),
                strip_columns(w.clone()),
                "member {i}: {}",
                sqls[i]
            );
        }
        assert_eq!(
            batch.coverage().function_names(),
            serial.coverage().function_names(),
            "triggered functions diverge"
        );
        assert_eq!(
            batch.coverage().branches_covered(),
            serial.coverage().branches_covered(),
            "covered branches diverge"
        );
        assert_eq!(batch.crash_log().len(), serial.crash_log().len());
    }

    fn assert_equiv(sqls: &[&str]) {
        assert_equiv_with(plain, sqls);
    }

    #[test]
    fn function_group_matches_serial() {
        assert_equiv(&["SELECT UPPER('a')", "SELECT UPPER('xyz')", "SELECT upper(NULL)"]);
    }

    #[test]
    fn nested_arithmetic_matches_serial() {
        assert_equiv(&[
            "SELECT ABS(1 - 2) + LENGTH('ab')",
            "SELECT ABS(0 - 9223372036854775807) + LENGTH('')",
            "SELECT ABS(0 - 0) + LENGTH('xx')",
        ]);
        // Negation is its own shape node (`-x` is Unary, not part of the
        // literal): a uniformly negated group must also match serial,
        // including the i64::MIN overflow-to-decimal path.
        assert_equiv(&[
            "SELECT ABS(-1)",
            "SELECT ABS(-9223372036854775808)",
            "SELECT ABS(-0.5)",
        ]);
    }

    #[test]
    fn heterogeneous_literal_slots_match_serial() {
        // The same slot holds numbers, text and NULL across members — the
        // column promotes to Mixed, values must survive untouched.
        assert_equiv(&["SELECT COALESCE(1, 'x')", "SELECT COALESCE('y', 2)", "SELECT COALESCE(NULL, NULL)"]);
    }

    #[test]
    fn cast_and_between_match_serial() {
        assert_equiv(&[
            "SELECT CAST('1' AS INTEGER) BETWEEN 0 AND 2",
            "SELECT CAST('abc' AS INTEGER) BETWEEN 1 AND 1",
            "SELECT CAST('-5' AS INTEGER) BETWEEN 9 AND 10",
        ]);
    }

    #[test]
    fn fallback_subtrees_match_serial() {
        assert_equiv(&[
            "SELECT CASE WHEN 1 = 1 THEN 'a' ELSE 'b' END",
            "SELECT CASE WHEN 0 = 1 THEN 'c' ELSE 'd' END",
        ]);
        assert_equiv(&["SELECT 1 IN (1, 2, NULL)", "SELECT 5 IN (9, 8, NULL)"]);
    }

    #[test]
    fn error_members_match_serial() {
        // A mid-group error must mask only its own row.
        assert_equiv(&[
            "SELECT 1 / 1",
            "SELECT 1 / 0",
            "SELECT 4 / 2",
        ]);
    }

    #[test]
    fn crash_mid_batch_attributes_to_the_right_member() {
        assert_equiv_with(faulted, &["SELECT ABS(1)", "SELECT ABS(42)", "SELECT ABS(3)"]);
        // And explicitly: the crash lands on index 1 only.
        let mut e = faulted();
        let prepared: Vec<Prepared> = ["SELECT ABS(1)", "SELECT ABS(42)", "SELECT ABS(3)"]
            .iter()
            .map(|s| e.prepare(s).unwrap())
            .collect();
        let refs: Vec<&Prepared> = prepared.iter().collect();
        let got = e.execute_batch(&refs).unwrap();
        assert!(matches!(got[0], ExecOutcome::Rows(_)));
        match &got[1] {
            ExecOutcome::Crash(c) => assert_eq!(c.fault_id, "batch-test-abs"),
            other => panic!("expected crash, got {other:?}"),
        }
        assert!(matches!(got[2], ExecOutcome::Rows(_)));
        assert_eq!(e.crash_log().len(), 1);
    }

    #[test]
    fn singleton_group_matches_serial() {
        assert_equiv(&["SELECT CONCAT('a', 'b', 3)"]);
    }

    #[test]
    fn volatile_and_row_reading_statements_are_not_batchable() {
        let e = plain();
        for sql in [
            "SELECT RAND()",
            "SELECT x FROM t",
            "SELECT (SELECT 1)",
            "SELECT COUNT(*)",
            "SELECT 1 ORDER BY 1",
            "SELECT 1 LIMIT 1",
            "SELECT DISTINCT 1",
        ] {
            let p = e.prepare(sql).expect("prepare");
            assert_eq!(e.shape_key(&p), None, "{sql} must not be batchable");
        }
    }

    #[test]
    fn shape_keys_fold_case_and_split_on_structure() {
        let e = plain();
        let a = e.prepare("SELECT UPPER('a')").unwrap();
        let b = e.prepare("SELECT upper('completely different literal')").unwrap();
        let c = e.prepare("SELECT LOWER('a')").unwrap();
        assert_eq!(e.shape_key(&a), e.shape_key(&b));
        assert_ne!(e.shape_key(&a), e.shape_key(&c));
    }

    #[test]
    fn bind_rejects_structural_mismatch() {
        // Members of *different* shapes handed to one batch: the lockstep
        // verification must refuse rather than misbind (this simulates a
        // shape-key collision).
        let mut e = plain();
        let a = e.prepare("SELECT UPPER('a')").unwrap();
        let b = e.prepare("SELECT LOWER('b')").unwrap();
        assert_eq!(e.execute_batch(&[&a, &b]), None);
    }

    #[test]
    fn empty_group_is_empty() {
        let mut e = plain();
        assert_eq!(e.execute_batch(&[]), Some(Vec::new()));
    }

    #[test]
    fn arity_error_group_matches_serial() {
        assert_equiv(&["SELECT UPPER('a', 'b')", "SELECT UPPER('c', 'd')"]);
    }
}
