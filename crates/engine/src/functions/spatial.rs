//! Spatial built-ins — the `ST_*` family plus `BOUNDARY`, the sink of the
//! Listing 11 nested-function chain.

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::functions::string::some_or_null;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::geometry::{Geometry, Point};
use soft_types::value::Value;

fn def(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Spatial,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the spatial functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("st_geomfromtext", 1, Some(1), f_geomfromtext));
    r.register(def("st_astext", 1, Some(1), f_astext));
    r.register(def("st_aswkb", 1, Some(1), f_aswkb));
    r.register(def("st_geomfromwkb", 1, Some(1), f_geomfromwkb));
    r.register(def("point", 2, Some(2), f_point));
    r.register(def("linestring", 2, None, f_linestring));
    r.register(def("st_x", 1, Some(1), f_x));
    r.register(def("st_y", 1, Some(1), f_y));
    r.register(def("st_dimension", 1, Some(1), f_dimension));
    r.register(def("st_numpoints", 1, Some(1), f_numpoints));
    r.register(def("st_length", 1, Some(1), f_length));
    r.register(def("st_area", 1, Some(1), f_area));
    r.register(def("st_envelope", 1, Some(1), f_envelope));
    r.register(def("boundary", 1, Some(1), f_boundary));
    r.register(def("st_isempty", 1, Some(1), f_isempty));
    r.register(def("st_equals", 2, Some(2), f_equals));
    r.register(def("st_distance", 2, Some(2), f_distance));
    r.register(def("st_contains", 2, Some(2), f_contains));
    r.register(def("st_geometrytype", 1, Some(1), f_geometrytype));
}

fn f_geomfromtext(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    match Geometry::parse_wkt(&s) {
        Ok(g) => Ok(Value::Geometry(g)),
        Err(e) => {
            ctx.branch("bad-wkt");
            runtime_err(format!("ST_GEOMFROMTEXT(): {e}"))
        }
    }
}

fn f_astext(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    Ok(Value::Text(g.to_string()))
}

fn f_aswkb(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    Ok(Value::Binary(g.to_binary()))
}

fn f_geomfromwkb(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let b = some_or_null!(want_binary(ctx, args, 0)?);
    match Geometry::from_binary(&b) {
        Ok(g) => Ok(Value::Geometry(g)),
        Err(e) => {
            // The guarded behaviour: arbitrary binary (an INET blob, say)
            // is rejected, not dereferenced.
            ctx.branch("bad-wkb");
            runtime_err(format!("ST_GEOMFROMWKB(): {e}"))
        }
    }
}

fn f_point(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let x = some_or_null!(want_f64(ctx, args, 0)?);
    let y = some_or_null!(want_f64(ctx, args, 1)?);
    Ok(Value::Geometry(Geometry::Point(Point { x, y })))
}

fn f_linestring(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut pts = Vec::with_capacity(args.len());
    for (i, a) in args.iter().enumerate() {
        match &a.value {
            Value::Geometry(Geometry::Point(p)) => pts.push(*p),
            Value::Null => return Ok(Value::Null),
            _ => {
                let g = some_or_null!(want_geometry(ctx, args, i)?);
                match g {
                    Geometry::Point(p) => pts.push(p),
                    _ => {
                        ctx.branch("non-point");
                        return type_err("LINESTRING(): arguments must be points");
                    }
                }
            }
        }
    }
    Ok(Value::Geometry(Geometry::LineString(pts)))
}

fn f_x(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match some_or_null!(want_geometry(ctx, args, 0)?) {
        Geometry::Point(p) => Ok(Value::Float(p.x)),
        _ => {
            ctx.branch("non-point");
            Ok(Value::Null)
        }
    }
}

fn f_y(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match some_or_null!(want_geometry(ctx, args, 0)?) {
        Geometry::Point(p) => Ok(Value::Float(p.y)),
        _ => {
            ctx.branch("non-point");
            Ok(Value::Null)
        }
    }
}

fn f_dimension(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    Ok(Value::Integer(g.dimension() as i64))
}

fn f_numpoints(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    Ok(Value::Integer(g.num_points() as i64))
}

fn f_length(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    Ok(Value::Float(g.length()))
}

fn f_area(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    Ok(Value::Float(g.area()))
}

fn f_envelope(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    match g.envelope() {
        Ok(e) => Ok(Value::Geometry(e)),
        Err(_) => {
            ctx.branch("empty-geometry");
            Ok(Value::Null)
        }
    }
}

/// `BOUNDARY(g)` — the guarded version validates its input is a geometry
/// (via the cast layer) before computing; MariaDB's missing validation here
/// is the Case 6 SEGV, reproduced in the fault corpus.
fn f_boundary(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    match g.boundary() {
        Ok(b) => Ok(Value::Geometry(b)),
        Err(e) => {
            ctx.branch("unsupported-kind");
            runtime_err(format!("BOUNDARY(): {e}"))
        }
    }
}

fn f_isempty(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    Ok(Value::Boolean(matches!(g, Geometry::Collection(ref c) if c.is_empty())))
}

fn f_equals(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_geometry(ctx, args, 0)?);
    let b = some_or_null!(want_geometry(ctx, args, 1)?);
    Ok(Value::Boolean(a == b))
}

fn f_distance(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_geometry(ctx, args, 0)?);
    let b = some_or_null!(want_geometry(ctx, args, 1)?);
    match (a, b) {
        (Geometry::Point(p), Geometry::Point(q)) => {
            Ok(Value::Float(((p.x - q.x).powi(2) + (p.y - q.y).powi(2)).sqrt()))
        }
        _ => {
            ctx.branch("non-point");
            runtime_err("ST_DISTANCE(): only point-point distance is supported")
        }
    }
}

/// Bounding-box containment (a simplification of real predicates, which is
/// all the workload generators need).
fn f_contains(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_geometry(ctx, args, 0)?);
    let b = some_or_null!(want_geometry(ctx, args, 1)?);
    let env = |g: &Geometry| -> Option<(f64, f64, f64, f64)> {
        match g.envelope() {
            Ok(Geometry::Polygon(rings)) => {
                let r = rings.first()?;
                let minx = r.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
                let maxx = r.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
                let miny = r.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
                let maxy = r.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
                Some((minx, maxx, miny, maxy))
            }
            _ => None,
        }
    };
    match (env(&a), env(&b)) {
        (Some(ea), Some(eb)) => Ok(Value::Boolean(
            ea.0 <= eb.0 && ea.1 >= eb.1 && ea.2 <= eb.2 && ea.3 >= eb.3,
        )),
        _ => {
            ctx.branch("empty-geometry");
            Ok(Value::Null)
        }
    }
}

fn f_geometrytype(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let g = some_or_null!(want_geometry(ctx, args, 0)?);
    Ok(Value::Text(g.kind().to_string()))
}
