//! JSON built-ins, including MariaDB's dynamic-column pair
//! (`COLUMN_CREATE` / `COLUMN_JSON` — the MDEV-8407 chain).

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::functions::string::some_or_null;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::json::{self, JsonPath, JsonValue};
use soft_types::value::Value;

fn def(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Json,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the JSON functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("json_valid", 1, Some(1), f_json_valid));
    r.register(def("json_length", 1, Some(2), f_json_length));
    r.register(def("json_depth", 1, Some(1), f_json_depth));
    r.register(def("json_type", 1, Some(1), f_json_type));
    r.register(def("json_extract", 2, None, f_json_extract));
    r.register(def("json_keys", 1, Some(2), f_json_keys));
    r.register(def("json_array", 0, None, f_json_array));
    r.register(def("json_object", 0, None, f_json_object));
    r.register(def("json_quote", 1, Some(1), f_json_quote));
    r.register(def("json_unquote", 1, Some(1), f_json_unquote));
    r.register(def("json_contains", 2, Some(3), f_json_contains));
    r.register(def("json_merge", 2, None, f_json_merge));
    r.register(def("json_set", 3, None, f_json_set));
    r.register(def("json_insert", 3, None, f_json_insert));
    r.register(def("json_replace", 3, None, f_json_replace));
    r.register(def("json_remove", 2, None, f_json_remove));
    r.register(def("json_search", 3, Some(3), f_json_search));
    r.register(def("column_create", 2, None, f_column_create));
    r.register(def("column_json", 1, Some(1), f_column_json));
    r.register(def("column_get", 2, Some(2), f_column_get));
}

fn parse_path(ctx: &mut FnCtx<'_>, p: &str) -> Result<Option<JsonPath>, EngineError> {
    match JsonPath::parse(p) {
        Ok(path) => Ok(Some(path)),
        Err(_) => {
            ctx.branch("bad-path");
            Ok(None)
        }
    }
}

fn f_json_valid(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Null => Ok(Value::Null),
        Value::Json(_) => Ok(Value::Boolean(true)),
        _ => {
            let s = some_or_null!(want_text(ctx, args, 0)?);
            Ok(Value::Boolean(json::is_valid(&s)))
        }
    }
}

fn f_json_length(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let j = some_or_null!(want_json(ctx, args, 0)?);
    if args.len() > 1 {
        let p = some_or_null!(want_text(ctx, args, 1)?);
        let Some(path) = parse_path(ctx, &p)? else {
            return runtime_err(format!("invalid JSON path {p:?}"));
        };
        return match j.eval_path(&path) {
            // A path beyond the document (the Case 5 `$[2][1]` on a
            // 100-element outer array) correctly yields NULL.
            None => {
                ctx.branch("path-miss");
                Ok(Value::Null)
            }
            Some(v) => Ok(Value::Integer(v.length() as i64)),
        };
    }
    Ok(Value::Integer(j.length() as i64))
}

fn f_json_depth(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let j = some_or_null!(want_json(ctx, args, 0)?);
    Ok(Value::Integer(j.depth() as i64))
}

fn f_json_type(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let j = some_or_null!(want_json(ctx, args, 0)?);
    Ok(Value::Text(j.type_name().to_string()))
}

fn f_json_extract(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let j = some_or_null!(want_json(ctx, args, 0)?);
    let mut hits = Vec::new();
    for i in 1..args.len() {
        let p = some_or_null!(want_text(ctx, args, i)?);
        let Some(path) = parse_path(ctx, &p)? else {
            return runtime_err(format!("invalid JSON path {p:?}"));
        };
        if let Some(v) = j.eval_path(&path) {
            hits.push(v.clone());
        }
    }
    match hits.len() {
        0 => Ok(Value::Null),
        1 if args.len() == 2 => Ok(Value::Json(hits.pop_first())),
        _ => Ok(Value::Json(JsonValue::Array(hits))),
    }
}

trait PopFirst {
    fn pop_first(self) -> JsonValue;
}

impl PopFirst for Vec<JsonValue> {
    fn pop_first(mut self) -> JsonValue {
        self.remove(0)
    }
}

fn f_json_keys(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let j = some_or_null!(want_json(ctx, args, 0)?);
    let target = if args.len() > 1 {
        let p = some_or_null!(want_text(ctx, args, 1)?);
        let Some(path) = parse_path(ctx, &p)? else {
            return runtime_err(format!("invalid JSON path {p:?}"));
        };
        match j.eval_path(&path) {
            None => return Ok(Value::Null),
            Some(v) => v.clone(),
        }
    } else {
        j
    };
    match target {
        JsonValue::Object(fields) => Ok(Value::Json(JsonValue::Array(
            fields.into_iter().map(|(k, _)| JsonValue::String(k)).collect(),
        ))),
        _ => {
            ctx.branch("non-object");
            Ok(Value::Null)
        }
    }
}

/// Converts a SQL value to the JSON node `JSON_ARRAY`/`JSON_OBJECT` embed.
fn to_json_node(ctx: &mut FnCtx<'_>, e: &Evaluated) -> Result<JsonValue, EngineError> {
    Ok(match &e.value {
        Value::Null => JsonValue::Null,
        Value::Boolean(b) => JsonValue::Bool(*b),
        Value::Integer(i) => JsonValue::Number(i.to_string()),
        Value::Decimal(d) => JsonValue::Number(d.to_string()),
        Value::Float(f) => JsonValue::Number(format!("{f}")),
        Value::Json(j) => j.clone(),
        other => {
            let v = ctx.cast(
                &Evaluated { value: other.clone(), provenance: e.provenance.clone() },
                soft_types::value::DataType::Text,
                false,
            )?;
            match v.value {
                Value::Text(s) => JsonValue::String(s),
                _ => JsonValue::Null,
            }
        }
    })
}

fn f_json_array(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut items = Vec::with_capacity(args.len());
    for a in args {
        items.push(to_json_node(ctx, a)?);
    }
    let v = Value::Json(JsonValue::Array(items));
    ctx.charge(&v)?;
    Ok(v)
}

fn f_json_object(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if !args.len().is_multiple_of(2) {
        ctx.branch("odd-arity");
        return runtime_err("JSON_OBJECT(): odd number of arguments");
    }
    let mut fields = Vec::with_capacity(args.len() / 2);
    for pair in args.chunks(2) {
        let key = match &pair[0].value {
            Value::Null => {
                ctx.branch("null-key");
                return runtime_err("JSON_OBJECT(): NULL key");
            }
            v => v.render(),
        };
        fields.push((key, to_json_node(ctx, &pair[1])?));
    }
    let v = Value::Json(JsonValue::Object(fields));
    ctx.charge(&v)?;
    Ok(v)
}

fn f_json_quote(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Text(JsonValue::String(s).to_json_string()))
}

fn f_json_unquote(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Json(JsonValue::String(s)) => Ok(Value::Text(s.clone())),
        _ => {
            let s = some_or_null!(want_text(ctx, args, 0)?);
            match json::parse(&s) {
                Ok(JsonValue::String(inner)) => Ok(Value::Text(inner)),
                _ => {
                    ctx.branch("not-a-json-string");
                    Ok(Value::Text(s))
                }
            }
        }
    }
}

fn json_contains_node(hay: &JsonValue, needle: &JsonValue) -> bool {
    if hay == needle {
        return true;
    }
    match hay {
        JsonValue::Array(items) => items.iter().any(|i| json_contains_node(i, needle)),
        JsonValue::Object(fields) => fields.iter().any(|(_, v)| json_contains_node(v, needle)),
        _ => false,
    }
}

fn f_json_contains(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let hay = some_or_null!(want_json(ctx, args, 0)?);
    let needle = some_or_null!(want_json(ctx, args, 1)?);
    let target = if args.len() > 2 {
        let p = some_or_null!(want_text(ctx, args, 2)?);
        let Some(path) = parse_path(ctx, &p)? else {
            return runtime_err(format!("invalid JSON path {p:?}"));
        };
        match hay.eval_path(&path) {
            None => return Ok(Value::Null),
            Some(v) => v.clone(),
        }
    } else {
        hay
    };
    Ok(Value::Boolean(json_contains_node(&target, &needle)))
}

fn f_json_merge(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut acc = some_or_null!(want_json(ctx, args, 0)?);
    for i in 1..args.len() {
        let next = some_or_null!(want_json(ctx, args, i)?);
        acc = merge(acc, next);
    }
    let v = Value::Json(acc);
    ctx.charge(&v)?;
    Ok(v)
}

fn merge(a: JsonValue, b: JsonValue) -> JsonValue {
    match (a, b) {
        (JsonValue::Array(mut xs), JsonValue::Array(ys)) => {
            xs.extend(ys);
            JsonValue::Array(xs)
        }
        (JsonValue::Array(mut xs), y) => {
            xs.push(y);
            JsonValue::Array(xs)
        }
        (x, JsonValue::Array(mut ys)) => {
            ys.insert(0, x);
            JsonValue::Array(ys)
        }
        (JsonValue::Object(mut xf), JsonValue::Object(yf)) => {
            for (k, v) in yf {
                match xf.iter_mut().find(|(xk, _)| *xk == k) {
                    Some((_, xv)) => {
                        let old = std::mem::replace(xv, JsonValue::Null);
                        *xv = merge(old, v);
                    }
                    None => xf.push((k, v)),
                }
            }
            JsonValue::Object(xf)
        }
        (x, y) => JsonValue::Array(vec![x, y]),
    }
}

/// Shared body of JSON_SET / JSON_INSERT / JSON_REPLACE.
fn json_modify(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    insert: bool,
    replace: bool,
) -> Result<Value, EngineError> {
    let mut doc = some_or_null!(want_json(ctx, args, 0)?);
    if !(args.len() - 1).is_multiple_of(2) {
        ctx.branch("odd-arity");
        return runtime_err("path/value arguments must come in pairs");
    }
    let mut i = 1;
    while i + 1 < args.len() {
        let p = some_or_null!(want_text(ctx, args, i)?);
        let Some(path) = parse_path(ctx, &p)? else {
            return runtime_err(format!("invalid JSON path {p:?}"));
        };
        let node = to_json_node(ctx, &args[i + 1])?;
        set_path(&mut doc, &path.legs, node, insert, replace);
        i += 2;
    }
    let v = Value::Json(doc);
    ctx.charge(&v)?;
    Ok(v)
}

fn set_path(
    doc: &mut JsonValue,
    legs: &[json::PathLeg],
    node: JsonValue,
    insert: bool,
    replace: bool,
) {
    let Some(first) = legs.first() else {
        if replace {
            *doc = node;
        }
        return;
    };
    match (first, doc) {
        (json::PathLeg::Key(k), JsonValue::Object(fields)) => {
            let existing = fields.iter_mut().find(|(fk, _)| fk == k);
            match existing {
                Some((_, v)) => {
                    if legs.len() == 1 {
                        if replace {
                            *v = node;
                        }
                    } else {
                        set_path(v, &legs[1..], node, insert, replace);
                    }
                }
                None => {
                    if legs.len() == 1 && insert {
                        fields.push((k.clone(), node));
                    }
                }
            }
        }
        (json::PathLeg::Index(i), JsonValue::Array(items)) => {
            if *i < items.len() {
                if legs.len() == 1 {
                    if replace {
                        items[*i] = node;
                    }
                } else {
                    set_path(&mut items[*i], &legs[1..], node, insert, replace);
                }
            } else if legs.len() == 1 && insert {
                items.push(node);
            }
        }
        _ => {}
    }
}

fn f_json_set(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    json_modify(ctx, args, true, true)
}

fn f_json_insert(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    json_modify(ctx, args, true, false)
}

fn f_json_replace(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    json_modify(ctx, args, false, true)
}

fn f_json_remove(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut doc = some_or_null!(want_json(ctx, args, 0)?);
    for i in 1..args.len() {
        let p = some_or_null!(want_text(ctx, args, i)?);
        let Some(path) = parse_path(ctx, &p)? else {
            return runtime_err(format!("invalid JSON path {p:?}"));
        };
        remove_path(&mut doc, &path.legs);
    }
    Ok(Value::Json(doc))
}

fn remove_path(doc: &mut JsonValue, legs: &[json::PathLeg]) {
    let Some(first) = legs.first() else { return };
    match (first, doc) {
        (json::PathLeg::Key(k), JsonValue::Object(fields)) => {
            if legs.len() == 1 {
                fields.retain(|(fk, _)| fk != k);
            } else if let Some((_, v)) = fields.iter_mut().find(|(fk, _)| fk == k) {
                remove_path(v, &legs[1..]);
            }
        }
        (json::PathLeg::Index(i), JsonValue::Array(items)) => {
            if legs.len() == 1 {
                if *i < items.len() {
                    items.remove(*i);
                }
            } else if let Some(v) = items.get_mut(*i) {
                remove_path(v, &legs[1..]);
            }
        }
        _ => {}
    }
}

fn f_json_search(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let j = some_or_null!(want_json(ctx, args, 0)?);
    let mode = some_or_null!(want_text(ctx, args, 1)?).to_ascii_lowercase();
    let target = some_or_null!(want_text(ctx, args, 2)?);
    if mode != "one" && mode != "all" {
        ctx.branch("bad-mode");
        return runtime_err("JSON_SEARCH(): mode must be 'one' or 'all'");
    }
    let mut found = Vec::new();
    search(&j, "$", &target, &mut found);
    match (found.is_empty(), mode.as_str()) {
        (true, _) => Ok(Value::Null),
        (false, "one") => Ok(Value::Text(found.remove(0))),
        _ => Ok(Value::Json(JsonValue::Array(
            found.into_iter().map(JsonValue::String).collect(),
        ))),
    }
}

fn search(node: &JsonValue, path: &str, target: &str, out: &mut Vec<String>) {
    match node {
        JsonValue::String(s) if s == target => out.push(path.to_string()),
        JsonValue::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                search(item, &format!("{path}[{i}]"), target, out);
            }
        }
        JsonValue::Object(fields) => {
            for (k, v) in fields {
                search(v, &format!("{path}.{k}"), target, out);
            }
        }
        _ => {}
    }
}

/// MariaDB dynamic columns: `COLUMN_CREATE(name, value, ...)` produces an
/// opaque binary blob; we encode it as JSON text tagged with a magic byte so
/// `COLUMN_JSON`/`COLUMN_GET` can decode it.
const DYNCOL_MAGIC: u8 = 0x04;

fn f_column_create(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if !args.len().is_multiple_of(2) {
        ctx.branch("odd-arity");
        return runtime_err("COLUMN_CREATE(): name/value pairs required");
    }
    let mut fields = Vec::with_capacity(args.len() / 2);
    for pair in args.chunks(2) {
        let name = match &pair[0].value {
            Value::Null => {
                ctx.branch("null-name");
                return runtime_err("COLUMN_CREATE(): NULL column name");
            }
            v => v.render(),
        };
        // Values keep their numeric form — a 48-digit decimal stays 48
        // digits, which is what makes the MDEV-8407 chain reachable.
        fields.push((name, to_json_node(ctx, &pair[1])?));
    }
    let mut blob = vec![DYNCOL_MAGIC];
    blob.extend_from_slice(JsonValue::Object(fields).to_json_string().as_bytes());
    let v = Value::Binary(blob);
    ctx.charge(&v)?;
    Ok(v)
}

fn decode_dyncol(ctx: &mut FnCtx<'_>, b: &[u8]) -> Result<Option<JsonValue>, EngineError> {
    if b.first() != Some(&DYNCOL_MAGIC) {
        ctx.branch("not-a-dyncol");
        return Ok(None);
    }
    match std::str::from_utf8(&b[1..]).ok().and_then(|s| json::parse(s).ok()) {
        Some(j) => Ok(Some(j)),
        None => {
            ctx.branch("corrupt-dyncol");
            Ok(None)
        }
    }
}

fn f_column_json(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let b = some_or_null!(want_binary(ctx, args, 0)?);
    match decode_dyncol(ctx, &b)? {
        Some(j) => Ok(Value::Text(j.to_json_string())),
        None => runtime_err("COLUMN_JSON(): argument is not a dynamic column blob"),
    }
}

fn f_column_get(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let b = some_or_null!(want_binary(ctx, args, 0)?);
    let name = some_or_null!(want_text(ctx, args, 1)?);
    match decode_dyncol(ctx, &b)? {
        Some(j) => match j.get_key(&name) {
            Some(v) => Ok(soft_types::cast::json_to_value(v)),
            None => Ok(Value::Null),
        },
        None => runtime_err("COLUMN_GET(): argument is not a dynamic column blob"),
    }
}
