//! String built-ins.
//!
//! The paper's Figure 1 shows string functions as the most bug-prone
//! category (117 of 508 occurrences, 57 distinct functions). This module
//! implements the common string surface of the studied DBMSs, including a
//! regex family backed by [`crate::regex`].

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::regex::Regex;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::value::Value;

fn def(
    name: &'static str,
    min: usize,
    max: Option<usize>,
    f: ScalarImpl,
) -> FunctionDef {
    FunctionDef {
        name,
        category: C::String,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the string functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("length", 1, Some(1), f_length));
    r.register(def("char_length", 1, Some(1), f_char_length));
    r.register(def("octet_length", 1, Some(1), f_length));
    r.register(def("bit_length", 1, Some(1), f_bit_length));
    r.register(def("upper", 1, Some(1), f_upper));
    r.register(def("lower", 1, Some(1), f_lower));
    r.register(def("initcap", 1, Some(1), f_initcap));
    r.register(def("concat", 0, None, f_concat));
    r.register(def("concat_ws", 1, None, f_concat_ws));
    r.register(def("substr", 2, Some(3), f_substr));
    r.register(def("left", 2, Some(2), f_left));
    r.register(def("right", 2, Some(2), f_right));
    r.register(def("lpad", 2, Some(3), f_lpad));
    r.register(def("rpad", 2, Some(3), f_rpad));
    r.register(def("trim", 1, Some(2), f_trim));
    r.register(def("ltrim", 1, Some(2), f_ltrim));
    r.register(def("rtrim", 1, Some(2), f_rtrim));
    r.register(def("replace", 3, Some(3), f_replace));
    r.register(def("repeat", 2, Some(2), f_repeat));
    r.register(def("reverse", 1, Some(1), f_reverse));
    r.register(def("position", 2, Some(2), f_position));
    r.register(def("instr", 2, Some(2), f_instr));
    r.register(def("locate", 2, Some(3), f_locate));
    r.register(def("ascii", 1, Some(1), f_ascii));
    r.register(def("chr", 1, Some(1), f_chr));
    r.register(def("char", 1, None, f_char));
    r.register(def("hex", 1, Some(1), f_hex));
    r.register(def("unhex", 1, Some(1), f_unhex));
    r.register(def("md5", 1, Some(1), f_md5));
    r.register(def("sha1", 1, Some(1), f_sha1));
    r.register(def("sha2", 2, Some(2), f_sha2));
    r.register(def("format", 2, Some(3), f_format));
    r.register(def("insert", 4, Some(4), f_insert));
    r.register(def("elt", 2, None, f_elt));
    r.register(def("field", 2, None, f_field));
    r.register(def("find_in_set", 2, Some(2), f_find_in_set));
    r.register(def("export_set", 3, Some(5), f_export_set));
    r.register(def("quote", 1, Some(1), f_quote));
    r.register(def("soundex", 1, Some(1), f_soundex));
    r.register(def("space", 1, Some(1), f_space));
    r.register(def("to_base64", 1, Some(1), f_to_base64));
    r.register(def("from_base64", 1, Some(1), f_from_base64));
    r.register(def("starts_with", 2, Some(2), f_starts_with));
    r.register(def("ends_with", 2, Some(2), f_ends_with));
    r.register(def("split_part", 3, Some(3), f_split_part));
    r.register(def("translate", 3, Some(3), f_translate));
    r.register(def("regexp_like", 2, Some(2), f_regexp_like));
    r.register(def("regexp_replace", 3, Some(3), f_regexp_replace));
    r.register(def("regexp_substr", 2, Some(2), f_regexp_substr));
    r.register(def("regexp_instr", 2, Some(2), f_regexp_instr));
    r.register(def("contains", 2, Some(3), f_contains));
    r.register(FunctionDef {
        name: "strcmp",
        category: C::Comparison,
        min_args: 2,
        max_args: Some(2),
        implementation: FunctionImpl::Scalar(f_strcmp),
    });
}

macro_rules! some_or_null {
    ($e:expr) => {
        match $e {
            Some(v) => v,
            None => return Ok(Value::Null),
        }
    };
}
pub(crate) use some_or_null;

fn f_length(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    // Byte length: binary values count their own bytes, not their rendering.
    if let Value::Binary(b) = &args[0].value {
        ctx.branch("binary-input");
        return Ok(Value::Integer(b.len() as i64));
    }
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Integer(s.len() as i64))
}

fn f_char_length(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Integer(s.chars().count() as i64))
}

fn f_bit_length(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Integer(8 * s.len() as i64))
}

fn f_upper(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Text(s.to_uppercase()))
}

fn f_lower(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Text(s.to_lowercase()))
}

fn f_initcap(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let mut out = String::with_capacity(s.len());
    let mut at_word_start = true;
    for c in s.chars() {
        if c.is_alphanumeric() {
            if at_word_start {
                out.extend(c.to_uppercase());
            } else {
                out.extend(c.to_lowercase());
            }
            at_word_start = false;
        } else {
            out.push(c);
            at_word_start = true;
        }
    }
    Ok(Value::Text(out))
}

fn f_concat(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut out = String::new();
    for i in 0..args.len() {
        // MySQL CONCAT: any NULL argument nulls the result.
        match want_text(ctx, args, i)? {
            None => {
                ctx.branch("null-argument");
                return Ok(Value::Null);
            }
            Some(s) => out.push_str(&s),
        }
    }
    let v = Value::Text(out);
    ctx.charge(&v)?;
    Ok(v)
}

fn f_concat_ws(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let sep = some_or_null!(want_text(ctx, args, 0)?);
    let mut parts = Vec::new();
    for i in 1..args.len() {
        // CONCAT_WS skips NULLs instead of nulling out.
        if let Some(s) = want_text(ctx, args, i)? {
            parts.push(s);
        } else {
            ctx.branch("skip-null");
        }
    }
    let v = Value::Text(parts.join(&sep));
    ctx.charge(&v)?;
    Ok(v)
}

fn f_substr(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let start = some_or_null!(want_int(ctx, args, 1)?);
    let len = if args.len() > 2 {
        match want_int(ctx, args, 2)? {
            None => return Ok(Value::Null),
            Some(l) => Some(l),
        }
    } else {
        None
    };
    let chars: Vec<char> = s.chars().collect();
    let n = chars.len() as i64;
    // SQL 1-based indexing; negative start counts from the end (MySQL).
    let begin = if start > 0 {
        ctx.branch("positive-start");
        start - 1
    } else if start < 0 {
        ctx.branch("negative-start");
        n + start
    } else {
        // MySQL: position 0 yields an empty result.
        ctx.branch("zero-start");
        return Ok(Value::Text(String::new()));
    };
    if begin < 0 || begin >= n {
        ctx.branch("out-of-range");
        return Ok(Value::Text(String::new()));
    }
    let take = match len {
        None => n - begin,
        Some(l) if l <= 0 => {
            ctx.branch("non-positive-length");
            0
        }
        Some(l) => l.min(n - begin),
    };
    Ok(Value::Text(chars[begin as usize..(begin + take) as usize].iter().collect()))
}

fn f_left(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let n = some_or_null!(want_int(ctx, args, 1)?);
    if n <= 0 {
        ctx.branch("non-positive");
        return Ok(Value::Text(String::new()));
    }
    Ok(Value::Text(s.chars().take(n as usize).collect()))
}

fn f_right(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let n = some_or_null!(want_int(ctx, args, 1)?);
    if n <= 0 {
        ctx.branch("non-positive");
        return Ok(Value::Text(String::new()));
    }
    let chars: Vec<char> = s.chars().collect();
    let skip = chars.len().saturating_sub(n as usize);
    Ok(Value::Text(chars[skip..].iter().collect()))
}

fn pad(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    left_side: bool,
) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let n = some_or_null!(want_int(ctx, args, 1)?);
    let pad = if args.len() > 2 {
        some_or_null!(want_text(ctx, args, 2)?)
    } else {
        " ".to_string()
    };
    if n < 0 {
        ctx.branch("negative-length");
        return Ok(Value::Null);
    }
    let n = ctx.repeat_count(n)?;
    let cur: Vec<char> = s.chars().collect();
    if cur.len() >= n {
        ctx.branch("truncate");
        return Ok(Value::Text(cur[..n].iter().collect()));
    }
    if pad.is_empty() {
        // MySQL returns NULL when the pad string is empty and padding is
        // needed.
        ctx.branch("empty-pad");
        return Ok(Value::Null);
    }
    let missing = n - cur.len();
    let padding: String = pad.chars().cycle().take(missing).collect();
    let out = if left_side { format!("{padding}{s}") } else { format!("{s}{padding}") };
    let v = Value::Text(out);
    ctx.charge(&v)?;
    Ok(v)
}

fn f_lpad(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    pad(ctx, args, true)
}

fn f_rpad(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    pad(ctx, args, false)
}

fn trim_impl(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    left: bool,
    right: bool,
) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let pat = if args.len() > 1 {
        some_or_null!(want_text(ctx, args, 1)?)
    } else {
        " ".to_string()
    };
    if pat.is_empty() {
        ctx.branch("empty-pattern");
        return Ok(Value::Text(s));
    }
    let mut out = s.as_str();
    if left {
        while let Some(rest) = out.strip_prefix(&pat) {
            out = rest;
        }
    }
    if right {
        while let Some(rest) = out.strip_suffix(&pat) {
            out = rest;
        }
    }
    Ok(Value::Text(out.to_string()))
}

fn f_trim(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    trim_impl(ctx, args, true, true)
}

fn f_ltrim(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    trim_impl(ctx, args, true, false)
}

fn f_rtrim(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    trim_impl(ctx, args, false, true)
}

fn f_replace(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let from = some_or_null!(want_text(ctx, args, 1)?);
    let to = some_or_null!(want_text(ctx, args, 2)?);
    if from.is_empty() {
        ctx.branch("empty-needle");
        return Ok(Value::Text(s));
    }
    let v = Value::Text(s.replace(&from, &to));
    ctx.charge(&v)?;
    Ok(v)
}

fn f_repeat(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let n = some_or_null!(want_int(ctx, args, 1)?);
    let n = ctx.repeat_count(n)?;
    if n == 0 {
        ctx.branch("zero-count");
        return Ok(Value::Text(String::new()));
    }
    // Charge before building to avoid huge allocations past the budget.
    let total = s.len().saturating_mul(n);
    *ctx.memory_used += total;
    if *ctx.memory_used > ctx.limits.max_memory_bytes {
        return Err(EngineError::Sql(crate::error::SqlError::ResourceLimit(format!(
            "REPEAT would allocate {total} bytes"
        ))));
    }
    Ok(Value::Text(s.repeat(n)))
}

fn f_reverse(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Text(s.chars().rev().collect()))
}

fn find_sub(hay: &str, needle: &str, from: usize) -> Option<usize> {
    // Character-based search returning 1-based position.
    let hay_chars: Vec<char> = hay.chars().collect();
    let needle_chars: Vec<char> = needle.chars().collect();
    if needle_chars.is_empty() {
        return Some(from.max(1));
    }
    let mut i = from.saturating_sub(1);
    while i + needle_chars.len() <= hay_chars.len() {
        if hay_chars[i..i + needle_chars.len()] == needle_chars[..] {
            return Some(i + 1);
        }
        i += 1;
    }
    None
}

fn f_position(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let needle = some_or_null!(want_text(ctx, args, 0)?);
    let hay = some_or_null!(want_text(ctx, args, 1)?);
    Ok(Value::Integer(find_sub(&hay, &needle, 1).unwrap_or(0) as i64))
}

fn f_instr(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let hay = some_or_null!(want_text(ctx, args, 0)?);
    let needle = some_or_null!(want_text(ctx, args, 1)?);
    Ok(Value::Integer(find_sub(&hay, &needle, 1).unwrap_or(0) as i64))
}

fn f_locate(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let needle = some_or_null!(want_text(ctx, args, 0)?);
    let hay = some_or_null!(want_text(ctx, args, 1)?);
    let from = if args.len() > 2 {
        some_or_null!(want_int(ctx, args, 2)?)
    } else {
        1
    };
    if from < 1 {
        ctx.branch("non-positive-start");
        return Ok(Value::Integer(0));
    }
    Ok(Value::Integer(find_sub(&hay, &needle, from as usize).unwrap_or(0) as i64))
}

fn f_ascii(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    match s.bytes().next() {
        None => {
            ctx.branch("empty");
            Ok(Value::Integer(0))
        }
        Some(b) => Ok(Value::Integer(b as i64)),
    }
}

fn f_chr(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let n = some_or_null!(want_int(ctx, args, 0)?);
    let c = u32::try_from(n)
        .ok()
        .and_then(char::from_u32);
    match c {
        Some(c) => Ok(Value::Text(c.to_string())),
        None => {
            ctx.branch("invalid-codepoint");
            runtime_err(format!("{n} is not a valid character code"))
        }
    }
}

fn f_char(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut out = String::new();
    for i in 0..args.len() {
        if let Some(n) = want_int(ctx, args, i)? {
            // MySQL CHAR() ignores out-of-range values modulo 256.
            out.push(((n % 256).unsigned_abs() as u8) as char);
        } else {
            ctx.branch("skip-null");
        }
    }
    Ok(Value::Text(out))
}

fn f_hex(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let e = &args[0];
    if e.value.is_null() {
        return Ok(Value::Null);
    }
    match &e.value {
        Value::Integer(i) => Ok(Value::Text(format!("{i:X}"))),
        _ => {
            let b = some_or_null!(want_binary(ctx, args, 0)?);
            let mut out = String::with_capacity(b.len() * 2);
            for byte in b {
                out.push_str(&format!("{byte:02X}"));
            }
            Ok(Value::Text(out))
        }
    }
}

fn f_unhex(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    if s.len() % 2 != 0 {
        ctx.branch("odd-length");
        return Ok(Value::Null);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let b = s.as_bytes();
    for i in (0..b.len()).step_by(2) {
        let hi = (b[i] as char).to_digit(16);
        let lo = (b[i + 1] as char).to_digit(16);
        match (hi, lo) {
            (Some(h), Some(l)) => out.push((h * 16 + l) as u8),
            _ => {
                ctx.branch("non-hex");
                return Ok(Value::Null);
            }
        }
    }
    Ok(Value::Binary(out))
}

/// A simple non-cryptographic digest used as a stand-in for MD5/SHA: FNV-1a
/// folded to the requested width. (Documented substitution — the evaluation
/// only needs stable, input-sensitive digests, not collision resistance.)
fn digest_hex(data: &[u8], out_bytes: usize) -> String {
    let mut state: u64 = 0xcbf29ce484222325;
    let mut out = String::with_capacity(out_bytes * 2);
    let mut produced = 0usize;
    let mut round = 0u8;
    while produced < out_bytes {
        for &b in data.iter().chain(std::slice::from_ref(&round)) {
            state ^= b as u64;
            state = state.wrapping_mul(0x100000001b3);
        }
        for byte in state.to_be_bytes() {
            if produced >= out_bytes {
                break;
            }
            out.push_str(&format!("{byte:02x}"));
            produced += 1;
        }
        round = round.wrapping_add(1);
    }
    out
}

fn f_md5(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let b = some_or_null!(want_binary(ctx, args, 0)?);
    Ok(Value::Text(digest_hex(&b, 16)))
}

fn f_sha1(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let b = some_or_null!(want_binary(ctx, args, 0)?);
    Ok(Value::Text(digest_hex(&b, 20)))
}

fn f_sha2(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let b = some_or_null!(want_binary(ctx, args, 0)?);
    let bits = some_or_null!(want_int(ctx, args, 1)?);
    let bytes = match bits {
        0 | 256 => 32,
        224 => 28,
        384 => 48,
        512 => 64,
        _ => {
            ctx.branch("bad-width");
            return Ok(Value::Null);
        }
    };
    Ok(Value::Text(digest_hex(&b, bytes)))
}

/// `FORMAT(number, decimals[, locale])` — the MDEV-23415 code path: format a
/// number with `decimals` fraction digits and thousand separators. When the
/// total digit count exceeds the dialect's scientific threshold the input is
/// first re-rendered in scientific notation (what MariaDB's
/// `String::set_real` does), which a correct implementation must handle.
fn f_format(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let d = some_or_null!(want_decimal(ctx, args, 0)?);
    let decimals = some_or_null!(want_int(ctx, args, 1)?);
    if args.len() > 2 {
        // Locale is accepted but only the separators of en_US/de_DE are
        // modelled.
        let _locale = some_or_null!(want_text(ctx, args, 2)?);
    }
    if decimals < 0 {
        ctx.branch("negative-decimals");
        return runtime_err("FORMAT(): negative decimal places");
    }
    let decimals = decimals.min(crate::registry::Limits::default().max_decimal_digits as i64)
        as usize;
    if decimals > ctx.limits.scientific_threshold {
        // The guarded (post-fix) behaviour: clamp instead of overflowing the
        // result buffer. The *fault corpus* models the unfixed behaviour.
        ctx.branch("scientific-clamp");
    }
    let rounded = d
        .round_to_scale(decimals.min(soft_types::decimal::MAX_SCALE))
        .map_err(|e| EngineError::Sql(crate::error::SqlError::Runtime(e.to_string())))?;
    let text = rounded.to_string();
    // Insert thousands separators into the integer part.
    let (sign, rest) = match text.strip_prefix('-') {
        Some(r) => ("-", r),
        None => ("", text.as_str()),
    };
    let (int_part, frac_part) = match rest.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (rest, None),
    };
    let mut grouped = String::new();
    let digits: Vec<char> = int_part.chars().collect();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            grouped.push(',');
        }
        grouped.push(*c);
    }
    let mut out = format!("{sign}{grouped}");
    if let Some(f) = frac_part {
        out.push('.');
        out.push_str(f);
    } else if decimals > 0 {
        out.push('.');
        out.push_str(&"0".repeat(decimals.min(soft_types::decimal::MAX_SCALE)));
    }
    Ok(Value::Text(out))
}

fn f_insert(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let pos = some_or_null!(want_int(ctx, args, 1)?);
    let len = some_or_null!(want_int(ctx, args, 2)?);
    let newstr = some_or_null!(want_text(ctx, args, 3)?);
    let chars: Vec<char> = s.chars().collect();
    let n = chars.len() as i64;
    if pos < 1 || pos > n {
        ctx.branch("pos-out-of-range");
        return Ok(Value::Text(s));
    }
    let start = (pos - 1) as usize;
    let take = if len < 0 { n - pos + 1 } else { len.min(n - pos + 1) } as usize;
    let mut out: String = chars[..start].iter().collect();
    out.push_str(&newstr);
    out.extend(&chars[start + take..]);
    Ok(Value::Text(out))
}

fn f_elt(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let n = some_or_null!(want_int(ctx, args, 0)?);
    if n < 1 || n as usize >= args.len() {
        ctx.branch("index-out-of-range");
        return Ok(Value::Null);
    }
    match want_text(ctx, args, n as usize)? {
        Some(s) => Ok(Value::Text(s)),
        None => Ok(Value::Null),
    }
}

fn f_field(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let target = match want_text(ctx, args, 0)? {
        None => return Ok(Value::Integer(0)),
        Some(s) => s,
    };
    for i in 1..args.len() {
        if want_text(ctx, args, i)? == Some(target.clone()) {
            return Ok(Value::Integer(i as i64));
        }
    }
    Ok(Value::Integer(0))
}

fn f_find_in_set(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let needle = some_or_null!(want_text(ctx, args, 0)?);
    let set = some_or_null!(want_text(ctx, args, 1)?);
    if set.is_empty() {
        ctx.branch("empty-set");
        return Ok(Value::Integer(0));
    }
    for (i, item) in set.split(',').enumerate() {
        if item == needle {
            return Ok(Value::Integer(i as i64 + 1));
        }
    }
    Ok(Value::Integer(0))
}

fn f_export_set(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let bits = some_or_null!(want_int(ctx, args, 0)?);
    let on = some_or_null!(want_text(ctx, args, 1)?);
    let off = some_or_null!(want_text(ctx, args, 2)?);
    let sep = if args.len() > 3 {
        some_or_null!(want_text(ctx, args, 3)?)
    } else {
        ",".to_string()
    };
    let width = if args.len() > 4 {
        some_or_null!(want_int(ctx, args, 4)?).clamp(0, 64)
    } else {
        64
    };
    let mut parts = Vec::with_capacity(width as usize);
    for i in 0..width {
        if (bits >> i) & 1 == 1 {
            parts.push(on.clone());
        } else {
            parts.push(off.clone());
        }
    }
    let v = Value::Text(parts.join(&sep));
    ctx.charge(&v)?;
    Ok(v)
}

fn f_quote(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match want_text(ctx, args, 0)? {
        None => Ok(Value::Text("NULL".into())),
        Some(s) => Ok(Value::Text(soft_types::value::quote_sql_string(&s))),
    }
}

fn f_soundex(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let code = |c: char| match c.to_ascii_uppercase() {
        'B' | 'F' | 'P' | 'V' => Some('1'),
        'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => Some('2'),
        'D' | 'T' => Some('3'),
        'L' => Some('4'),
        'M' | 'N' => Some('5'),
        'R' => Some('6'),
        _ => None,
    };
    let mut chars = s.chars().filter(|c| c.is_ascii_alphabetic());
    let Some(first) = chars.next() else {
        ctx.branch("no-letters");
        return Ok(Value::Text(String::new()));
    };
    let mut out = String::new();
    out.push(first.to_ascii_uppercase());
    let mut last = code(first);
    for c in chars {
        let d = code(c);
        if let Some(digit) = d {
            if d != last {
                out.push(digit);
                if out.len() == 4 {
                    break;
                }
            }
        }
        last = d;
    }
    while out.len() < 4 {
        out.push('0');
    }
    Ok(Value::Text(out))
}

fn f_space(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let n = some_or_null!(want_int(ctx, args, 0)?);
    let n = ctx.repeat_count(n)?;
    Ok(Value::Text(" ".repeat(n)))
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn f_to_base64(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let data = some_or_null!(want_binary(ctx, args, 0)?);
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { B64[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64[n as usize & 63] as char } else { '=' });
    }
    let v = Value::Text(out);
    ctx.charge(&v)?;
    Ok(v)
}

fn f_from_base64(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let cleaned: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    let mut out = Vec::new();
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    for &b in &cleaned {
        if b == b'=' {
            break;
        }
        let v = match B64.iter().position(|&x| x == b) {
            Some(v) => v as u32,
            None => {
                ctx.branch("bad-char");
                return Ok(Value::Null);
            }
        };
        acc = (acc << 6) | v;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    Ok(Value::Binary(out))
}

fn f_starts_with(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let p = some_or_null!(want_text(ctx, args, 1)?);
    Ok(Value::Boolean(s.starts_with(&p)))
}

fn f_ends_with(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let p = some_or_null!(want_text(ctx, args, 1)?);
    Ok(Value::Boolean(s.ends_with(&p)))
}

fn f_split_part(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let sep = some_or_null!(want_text(ctx, args, 1)?);
    let n = some_or_null!(want_int(ctx, args, 2)?);
    if sep.is_empty() {
        ctx.branch("empty-separator");
        return runtime_err("SPLIT_PART(): empty separator");
    }
    if n == 0 {
        ctx.branch("zero-index");
        return runtime_err("SPLIT_PART(): field position must not be zero");
    }
    let parts: Vec<&str> = s.split(&sep).collect();
    let idx = if n > 0 {
        n as usize - 1
    } else {
        // Negative counts from the end (PostgreSQL 14+).
        ctx.branch("negative-index");
        match parts.len().checked_sub(n.unsigned_abs() as usize) {
            Some(i) => i,
            None => return Ok(Value::Text(String::new())),
        }
    };
    Ok(Value::Text(parts.get(idx).copied().unwrap_or("").to_string()))
}

fn f_translate(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let from: Vec<char> = some_or_null!(want_text(ctx, args, 1)?).chars().collect();
    let to: Vec<char> = some_or_null!(want_text(ctx, args, 2)?).chars().collect();
    let out: String = s
        .chars()
        .filter_map(|c| match from.iter().position(|&f| f == c) {
            None => Some(c),
            Some(i) => to.get(i).copied(),
        })
        .collect();
    Ok(Value::Text(out))
}

fn compile_pattern(ctx: &mut FnCtx<'_>, pat: &str) -> Result<Regex, EngineError> {
    Regex::compile(pat).map_err(|e| {
        ctx.coverage.record_branch(ctx.name, "bad-pattern");
        EngineError::Sql(crate::error::SqlError::Runtime(format!(
            "invalid regular expression: {e}"
        )))
    })
}

fn f_regexp_like(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let pat = some_or_null!(want_text(ctx, args, 1)?);
    let re = compile_pattern(ctx, &pat)?;
    match re.is_match(&s) {
        Ok(b) => Ok(Value::Boolean(b)),
        Err(e) => runtime_err(format!("regex evaluation failed: {e}")),
    }
}

fn f_regexp_replace(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let pat = some_or_null!(want_text(ctx, args, 1)?);
    let rep = some_or_null!(want_text(ctx, args, 2)?);
    let re = compile_pattern(ctx, &pat)?;
    match re.replace_all(&s, &rep) {
        Ok(out) => {
            let v = Value::Text(out);
            ctx.charge(&v)?;
            Ok(v)
        }
        Err(e) => runtime_err(format!("regex evaluation failed: {e}")),
    }
}

fn f_regexp_substr(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let pat = some_or_null!(want_text(ctx, args, 1)?);
    let re = compile_pattern(ctx, &pat)?;
    match re.first_match(&s) {
        Ok(Some(m)) => Ok(Value::Text(m)),
        Ok(None) => Ok(Value::Null),
        Err(e) => runtime_err(format!("regex evaluation failed: {e}")),
    }
}

fn f_regexp_instr(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let pat = some_or_null!(want_text(ctx, args, 1)?);
    let re = compile_pattern(ctx, &pat)?;
    match re.find(&s) {
        Ok(Some((start, _))) => Ok(Value::Integer(start as i64 + 1)),
        Ok(None) => Ok(Value::Integer(0)),
        Err(e) => runtime_err(format!("regex evaluation failed: {e}")),
    }
}

/// Virtuoso-style free-text `CONTAINS(column, pattern[, options])` — the
/// Case 2 function. The guarded implementation validates every argument is
/// textual (the unfixed behaviour is modelled by the fault corpus).
fn f_contains(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let hay = some_or_null!(want_text(ctx, args, 0)?);
    let needle = some_or_null!(want_text(ctx, args, 1)?);
    if args.len() > 2 {
        // Options argument must be text too; `*` is rejected here.
        let _opts = some_or_null!(want_text(ctx, args, 2)?);
    }
    Ok(Value::Boolean(hay.contains(&needle)))
}

fn f_strcmp(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_text(ctx, args, 0)?);
    let b = some_or_null!(want_text(ctx, args, 1)?);
    Ok(Value::Integer(match a.cmp(&b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }))
}
