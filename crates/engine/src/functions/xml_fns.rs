//! XML built-ins (`ExtractValue` / `UpdateXML` — the Listing 2 pair).

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::functions::string::some_or_null;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::value::Value;
use soft_types::xml::{XPath, XmlDocument};

fn def(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Xml,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the XML functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("extractvalue", 2, Some(2), f_extractvalue));
    r.register(def("updatexml", 3, Some(3), f_updatexml));
    r.register(def("xml_valid", 1, Some(1), f_xml_valid));
    r.register(def("beautify_xml", 1, Some(1), f_beautify_xml));
}

fn parse_xpath(ctx: &mut FnCtx<'_>, p: &str) -> Result<Option<XPath>, EngineError> {
    match XPath::parse(p) {
        Ok(x) => Ok(Some(x)),
        Err(_) => {
            ctx.branch("bad-xpath");
            Ok(None)
        }
    }
}

fn f_extractvalue(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let doc = some_or_null!(want_xml(ctx, args, 0)?);
    let p = some_or_null!(want_text(ctx, args, 1)?);
    let Some(path) = parse_xpath(ctx, &p)? else {
        return runtime_err(format!("invalid XPath {p:?}"));
    };
    let hits = doc.select(&path);
    if hits.is_empty() {
        ctx.branch("no-match");
        return Ok(Value::Text(String::new()));
    }
    let texts: Vec<String> = hits.iter().map(|n| n.text_content()).collect();
    Ok(Value::Text(texts.join(" ")))
}

fn f_updatexml(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut doc = some_or_null!(want_xml(ctx, args, 0)?);
    let p = some_or_null!(want_text(ctx, args, 1)?);
    let replacement = some_or_null!(want_text(ctx, args, 2)?);
    let Some(path) = parse_xpath(ctx, &p)? else {
        return runtime_err(format!("invalid XPath {p:?}"));
    };
    // The replacement fragment must itself parse; a correct implementation
    // validates it before splicing (the MySQL xml UAF lived here).
    let frag = match XmlDocument::parse(&replacement) {
        Ok(f) => f,
        Err(_) => {
            ctx.branch("bad-replacement");
            return Ok(Value::Null);
        }
    };
    let Some(node) = frag.roots.into_iter().next() else {
        ctx.branch("empty-replacement");
        return Ok(Value::Xml(doc));
    };
    if !doc.replace_first(&path, node) {
        ctx.branch("no-match");
    }
    let v = Value::Xml(doc);
    ctx.charge(&v)?;
    Ok(v)
}

fn f_xml_valid(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Boolean(XmlDocument::parse(&s).is_ok()))
}

fn f_beautify_xml(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let doc = some_or_null!(want_xml(ctx, args, 0)?);
    Ok(Value::Text(doc.to_xml_string()))
}
