//! Conditional built-ins, including the `INTERVAL` comparison function whose
//! missing row-type validation is the MDEV-14596 bug of Listing 5.

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::value::Value;
use std::cmp::Ordering;

fn def(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Condition,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the conditional functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("if", 3, Some(3), f_if));
    r.register(def("ifnull", 2, Some(2), f_ifnull));
    r.register(def("nullif", 2, Some(2), f_nullif));
    r.register(def("coalesce", 1, None, f_coalesce));
    r.register(def("isnull", 1, Some(1), f_isnull));
    r.register(def("interval", 2, None, f_interval));
    r.register(def("nvl", 2, Some(2), f_ifnull));
    r.register(def("nvl2", 3, Some(3), f_nvl2));
    r.register(def("decode", 3, None, f_decode));
}

fn f_if(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match args[0].value.truthiness() {
        Some(true) => Ok(args[1].value.clone()),
        Some(false) => Ok(args[2].value.clone()),
        None => {
            // NULL condition selects the else branch (MySQL).
            ctx.branch("null-condition");
            Ok(args[2].value.clone())
        }
    }
}

fn f_ifnull(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        ctx.branch("null-first");
        Ok(args[1].value.clone())
    } else {
        Ok(args[0].value.clone())
    }
}

fn f_nvl2(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        ctx.branch("null-first");
        Ok(args[2].value.clone())
    } else {
        Ok(args[1].value.clone())
    }
}

fn f_nullif(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let eq = args[0]
        .value
        .sql_cmp(&args[1].value)
        .map_err(|e| EngineError::Sql(crate::error::SqlError::TypeError(e.to_string())))?;
    if eq == Some(Ordering::Equal) {
        ctx.branch("equal");
        Ok(Value::Null)
    } else {
        Ok(args[0].value.clone())
    }
}

fn f_coalesce(_ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    for a in args {
        if !a.value.is_null() {
            return Ok(a.value.clone());
        }
    }
    Ok(Value::Null)
}

fn f_isnull(_ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Boolean(args[0].value.is_null()))
}

/// `INTERVAL(N, N1, N2, ...)`: index of the last argument not greater than
/// N (MySQL semantics, binary-search equivalent). The arguments must be
/// comparable scalars; the *guarded* implementation rejects ROW values —
/// exactly the validation MariaDB was missing in MDEV-14596.
fn f_interval(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args.iter().any(|a| matches!(a.value, Value::Row(_))) {
        ctx.branch("row-argument");
        return type_err("INTERVAL(): ROW values are not comparable");
    }
    if args[0].value.is_null() {
        ctx.branch("null-pivot");
        return Ok(Value::Integer(-1));
    }
    let mut idx: i64 = 0;
    for (i, a) in args.iter().enumerate().skip(1) {
        let ord = args[0]
            .value
            .sql_cmp(&a.value)
            .map_err(|e| EngineError::Sql(crate::error::SqlError::TypeError(e.to_string())))?;
        match ord {
            Some(Ordering::Greater) | Some(Ordering::Equal) => idx = i as i64,
            _ => break,
        }
    }
    Ok(Value::Integer(idx))
}

fn f_decode(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    // DECODE(expr, search1, result1, ..., [default]).
    let expr = &args[0].value;
    let mut i = 1;
    while i + 1 < args.len() {
        let eq = expr
            .sql_cmp(&args[i].value)
            .map_err(|e| EngineError::Sql(crate::error::SqlError::TypeError(e.to_string())))?;
        let null_match = expr.is_null() && args[i].value.is_null();
        if eq == Some(Ordering::Equal) || null_match {
            return Ok(args[i + 1].value.clone());
        }
        i += 2;
    }
    if i < args.len() {
        ctx.branch("default");
        Ok(args[i].value.clone())
    } else {
        Ok(Value::Null)
    }
}
