//! Aggregate built-ins.
//!
//! Aggregates are the paper's second-most bug-prone category (Figure 1);
//! they "operate on all elements of one or more columns at the same time,
//! requiring support for various data types and values" (§4.2). Each
//! implementation receives per-row evaluated argument vectors plus the
//! `DISTINCT` flag.

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::decimal::Decimal;
use soft_types::json::JsonValue;
use soft_types::value::Value;
use std::collections::HashSet;

fn def(name: &'static str, min: usize, max: Option<usize>, f: AggregateImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Aggregate,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Aggregate(f),
    }
}

/// Registers the aggregate functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("count", 1, Some(1), f_count));
    r.register(def("sum", 1, Some(1), f_sum));
    r.register(def("avg", 1, Some(1), f_avg));
    r.register(def("min", 1, Some(1), f_min));
    r.register(def("max", 1, Some(1), f_max));
    r.register(def("group_concat", 1, Some(2), f_group_concat));
    r.register(def("string_agg", 1, Some(2), f_group_concat));
    r.register(def("stddev", 1, Some(1), f_stddev_pop));
    r.register(def("stddev_pop", 1, Some(1), f_stddev_pop));
    r.register(def("stddev_samp", 1, Some(1), f_stddev_samp));
    r.register(def("variance", 1, Some(1), f_var_pop));
    r.register(def("var_pop", 1, Some(1), f_var_pop));
    r.register(def("var_samp", 1, Some(1), f_var_samp));
    r.register(def("bit_and", 1, Some(1), f_bit_and));
    r.register(def("bit_or", 1, Some(1), f_bit_or));
    r.register(def("bit_xor", 1, Some(1), f_bit_xor));
    r.register(def("bool_and", 1, Some(1), f_bool_and));
    r.register(def("bool_or", 1, Some(1), f_bool_or));
    r.register(def("median", 1, Some(1), f_median));
    r.register(def("array_agg", 1, Some(1), f_array_agg));
    r.register(def("json_arrayagg", 1, Some(1), f_json_arrayagg));
    r.register(def("json_objectagg", 2, Some(2), f_json_objectagg));
    r.register(def("jsonb_object_agg", 2, Some(2), f_json_objectagg));
}

/// Applies DISTINCT by deduplicating rows on the rendered argument tuple.
fn dedup_rows(rows: &[Vec<Evaluated>], distinct: bool) -> Vec<&Vec<Evaluated>> {
    if !distinct {
        return rows.iter().collect();
    }
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for row in rows {
        let key: String = row.iter().map(|e| e.value.group_key()).collect::<Vec<_>>().join("\u{1}");
        if seen.insert(key) {
            out.push(row);
        }
    }
    out
}

fn first_args(rows: &[Vec<Evaluated>], distinct: bool) -> Vec<Evaluated> {
    dedup_rows(rows, distinct)
        .into_iter()
        .filter_map(|r| r.first().cloned())
        .collect()
}

fn f_count(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    let mut n = 0i64;
    for row in dedup_rows(rows, distinct) {
        match row.first() {
            // COUNT(*): the star counts every row.
            Some(e) if matches!(e.value, Value::Star) => n += 1,
            Some(e) if !e.value.is_null() => n += 1,
            Some(_) => ctx.branch("null-skipped"),
            None => n += 1,
        }
    }
    Ok(Value::Integer(n))
}

/// Numeric accumulation shared by SUM/AVG: exact decimal arithmetic when all
/// inputs are integer/decimal, float otherwise — the dual-path design whose
/// decimal leg is where the Listing 6 `AVG` overflow lives.
fn numeric_fold(
    ctx: &mut FnCtx<'_>,
    values: &[Evaluated],
) -> Result<Option<(Option<Decimal>, f64, usize)>, EngineError> {
    let mut dec_acc: Option<Decimal> = Some(Decimal::zero());
    let mut float_acc = 0f64;
    let mut count = 0usize;
    for e in values {
        match &e.value {
            Value::Null => {
                ctx.branch("null-skipped");
                continue;
            }
            Value::Star => {
                return type_err(format!("'*' is not a valid argument to {}", ctx.name));
            }
            v => {
                let d = match v {
                    Value::Integer(i) => Some(Decimal::from_i64(*i)),
                    Value::Decimal(d) => Some(d.clone()),
                    Value::Boolean(b) => Some(Decimal::from_i64(*b as i64)),
                    Value::Text(s) => {
                        // Lenient numeric coercion of strings.
                        ctx.branch("string-coercion");
                        s.trim().parse::<Decimal>().ok()
                    }
                    _ => None,
                };
                let f = v
                    .as_f64()
                    .or_else(|| match v {
                        Value::Text(s) => {
                            Some(soft_types::value::parse_numeric_prefix(s))
                        }
                        _ => None,
                    })
                    .unwrap_or(0.0);
                float_acc += f;
                count += 1;
                dec_acc = match (dec_acc, d) {
                    (Some(acc), Some(d)) => acc.checked_add(&d).ok(),
                    _ => None,
                };
            }
        }
    }
    if count == 0 {
        ctx.branch("empty-input");
        return Ok(None);
    }
    Ok(Some((dec_acc, float_acc, count)))
}

fn f_sum(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    let values = first_args(rows, distinct);
    match numeric_fold(ctx, &values)? {
        None => Ok(Value::Null),
        Some((Some(dec), _, _)) => Ok(Value::Decimal(dec)),
        Some((None, f, _)) => Ok(Value::Float(f)),
    }
}

fn f_avg(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    let values = first_args(rows, distinct);
    match numeric_fold(ctx, &values)? {
        None => Ok(Value::Null),
        Some((Some(dec), _, n)) => {
            let divisor = Decimal::from_i64(n as i64);
            match dec.checked_div(&divisor) {
                Ok(q) => Ok(Value::Decimal(q)),
                Err(_) => {
                    // Guarded overflow path: fall back to float.
                    ctx.branch("decimal-overflow");
                    Ok(Value::Float(dec.to_f64() / n as f64))
                }
            }
        }
        Some((None, f, n)) => Ok(Value::Float(f / n as f64)),
    }
}

fn extremum(
    ctx: &mut FnCtx<'_>,
    rows: &[Vec<Evaluated>],
    distinct: bool,
    greatest: bool,
) -> Result<Value, EngineError> {
    let mut best: Option<Value> = None;
    for e in first_args(rows, distinct) {
        if e.value.is_null() {
            continue;
        }
        match &best {
            None => best = Some(e.value.clone()),
            Some(b) => {
                let ord = e.value.sql_cmp(b).map_err(|err| {
                    EngineError::Sql(crate::error::SqlError::TypeError(err.to_string()))
                })?;
                let replace = matches!(
                    (ord, greatest),
                    (Some(std::cmp::Ordering::Greater), true)
                        | (Some(std::cmp::Ordering::Less), false)
                );
                if replace {
                    best = Some(e.value.clone());
                }
            }
        }
    }
    if best.is_none() {
        ctx.branch("empty-input");
    }
    Ok(best.unwrap_or(Value::Null))
}

fn f_min(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    extremum(ctx, rows, distinct, false)
}

fn f_max(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    extremum(ctx, rows, distinct, true)
}

fn f_group_concat(
    ctx: &mut FnCtx<'_>,
    rows: &[Vec<Evaluated>],
    distinct: bool,
) -> Result<Value, EngineError> {
    let mut parts = Vec::new();
    let mut sep = ",".to_string();
    for row in dedup_rows(rows, distinct) {
        if let Some(e) = row.first() {
            if e.value.is_null() {
                ctx.branch("null-skipped");
                continue;
            }
            parts.push(e.value.render());
        }
        if let Some(e) = row.get(1) {
            if let Value::Text(s) = &e.value {
                sep = s.clone();
            }
        }
    }
    if parts.is_empty() {
        ctx.branch("empty-input");
        return Ok(Value::Null);
    }
    let v = Value::Text(parts.join(&sep));
    ctx.charge(&v)?;
    Ok(v)
}

fn floats(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Vec<f64> {
    let mut out = Vec::new();
    for e in first_args(rows, distinct) {
        if let Some(f) = e.value.as_f64() {
            out.push(f);
        } else if !e.value.is_null() {
            ctx.branch("non-numeric-skipped");
        }
    }
    out
}

fn variance(xs: &[f64], sample: bool) -> Option<f64> {
    let n = xs.len();
    if n == 0 || (sample && n < 2) {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let ss: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
    Some(ss / (n - if sample { 1 } else { 0 }) as f64)
}

fn f_var_pop(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    Ok(variance(&floats(ctx, rows, distinct), false).map(Value::Float).unwrap_or(Value::Null))
}

fn f_var_samp(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    Ok(variance(&floats(ctx, rows, distinct), true).map(Value::Float).unwrap_or(Value::Null))
}

fn f_stddev_pop(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    Ok(variance(&floats(ctx, rows, distinct), false)
        .map(|v| Value::Float(v.sqrt()))
        .unwrap_or(Value::Null))
}

fn f_stddev_samp(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    Ok(variance(&floats(ctx, rows, distinct), true)
        .map(|v| Value::Float(v.sqrt()))
        .unwrap_or(Value::Null))
}

fn bit_fold(
    ctx: &mut FnCtx<'_>,
    rows: &[Vec<Evaluated>],
    distinct: bool,
    init: i64,
    op: fn(i64, i64) -> i64,
) -> Result<Value, EngineError> {
    let mut acc = init;
    let mut any = false;
    for e in first_args(rows, distinct) {
        match &e.value {
            Value::Null => ctx.branch("null-skipped"),
            Value::Integer(i) => {
                acc = op(acc, *i);
                any = true;
            }
            v => {
                if let Some(f) = v.as_f64() {
                    acc = op(acc, f as i64);
                    any = true;
                } else {
                    return type_err(format!("{}: non-numeric input", ctx.name));
                }
            }
        }
    }
    if !any {
        ctx.branch("empty-input");
    }
    Ok(Value::Integer(acc))
}

fn f_bit_and(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    bit_fold(ctx, rows, distinct, -1, |a, b| a & b)
}

fn f_bit_or(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    bit_fold(ctx, rows, distinct, 0, |a, b| a | b)
}

fn f_bit_xor(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    bit_fold(ctx, rows, distinct, 0, |a, b| a ^ b)
}

fn bool_fold(
    ctx: &mut FnCtx<'_>,
    rows: &[Vec<Evaluated>],
    distinct: bool,
    want_all: bool,
) -> Result<Value, EngineError> {
    let mut any = false;
    let mut acc = want_all;
    for e in first_args(rows, distinct) {
        match e.value.truthiness() {
            None => ctx.branch("null-skipped"),
            Some(b) => {
                any = true;
                acc = if want_all { acc && b } else { acc || b };
            }
        }
    }
    if !any {
        ctx.branch("empty-input");
        return Ok(Value::Null);
    }
    Ok(Value::Boolean(acc))
}

fn f_bool_and(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    bool_fold(ctx, rows, distinct, true)
}

fn f_bool_or(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    bool_fold(ctx, rows, distinct, false)
}

fn f_median(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    let mut xs = floats(ctx, rows, distinct);
    if xs.is_empty() {
        ctx.branch("empty-input");
        return Ok(Value::Null);
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    let m = if n % 2 == 1 { xs[n / 2] } else { (xs[n / 2 - 1] + xs[n / 2]) / 2.0 };
    Ok(Value::Float(m))
}

fn f_array_agg(ctx: &mut FnCtx<'_>, rows: &[Vec<Evaluated>], distinct: bool) -> Result<Value, EngineError> {
    let items: Vec<Value> =
        first_args(rows, distinct).into_iter().map(|e| e.value).collect();
    let v = Value::Array(items);
    ctx.charge(&v)?;
    Ok(v)
}

fn f_json_arrayagg(
    ctx: &mut FnCtx<'_>,
    rows: &[Vec<Evaluated>],
    distinct: bool,
) -> Result<Value, EngineError> {
    let mut items = Vec::new();
    for e in first_args(rows, distinct) {
        items.push(match &e.value {
            Value::Null => JsonValue::Null,
            Value::Boolean(b) => JsonValue::Bool(*b),
            Value::Integer(i) => JsonValue::Number(i.to_string()),
            Value::Decimal(d) => JsonValue::Number(d.to_string()),
            Value::Float(f) => JsonValue::Number(format!("{f}")),
            Value::Json(j) => j.clone(),
            v => JsonValue::String(v.render()),
        });
    }
    let v = Value::Json(JsonValue::Array(items));
    ctx.charge(&v)?;
    Ok(v)
}

/// `JSON[B]_OBJECT_AGG(key, value)` — the CVE-2023-5868 function of Case 3:
/// the guarded version renders unknown-typed keys through the value layer
/// instead of assuming NUL-terminated strings.
fn f_json_objectagg(
    ctx: &mut FnCtx<'_>,
    rows: &[Vec<Evaluated>],
    distinct: bool,
) -> Result<Value, EngineError> {
    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    for row in dedup_rows(rows, distinct) {
        let Some(k) = row.first() else { continue };
        if k.value.is_null() {
            ctx.branch("null-key");
            return runtime_err(format!("{}: NULL key", ctx.name));
        }
        let key = k.value.render();
        let val = match row.get(1).map(|e| &e.value) {
            None | Some(Value::Null) => JsonValue::Null,
            Some(Value::Boolean(b)) => JsonValue::Bool(*b),
            Some(Value::Integer(i)) => JsonValue::Number(i.to_string()),
            Some(Value::Decimal(d)) => JsonValue::Number(d.to_string()),
            Some(Value::Float(f)) => JsonValue::Number(format!("{f}")),
            Some(Value::Json(j)) => j.clone(),
            Some(v) => JsonValue::String(v.render()),
        };
        match fields.iter_mut().find(|(fk, _)| *fk == key) {
            Some((_, fv)) => *fv = val,
            None => fields.push((key, val)),
        }
    }
    if fields.is_empty() {
        ctx.branch("empty-input");
        return Ok(Value::Null);
    }
    let v = Value::Json(JsonValue::Object(fields));
    ctx.charge(&v)?;
    Ok(v)
}
