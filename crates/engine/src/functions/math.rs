//! Math built-ins.

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::functions::string::some_or_null;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::decimal::Decimal;
use soft_types::value::Value;

fn def(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Math,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the math functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("abs", 1, Some(1), f_abs));
    r.register(def("ceil", 1, Some(1), f_ceil));
    r.register(def("floor", 1, Some(1), f_floor));
    r.register(def("round", 1, Some(2), f_round));
    r.register(def("truncate", 2, Some(2), f_truncate));
    r.register(def("mod", 2, Some(2), f_mod));
    r.register(def("pow", 2, Some(2), f_pow));
    r.register(def("sqrt", 1, Some(1), f_sqrt));
    r.register(def("cbrt", 1, Some(1), f_cbrt));
    r.register(def("exp", 1, Some(1), f_exp));
    r.register(def("ln", 1, Some(1), f_ln));
    r.register(def("log", 1, Some(2), f_log));
    r.register(def("log2", 1, Some(1), f_log2));
    r.register(def("log10", 1, Some(1), f_log10));
    r.register(def("sin", 1, Some(1), f_sin));
    r.register(def("cos", 1, Some(1), f_cos));
    r.register(def("tan", 1, Some(1), f_tan));
    r.register(def("asin", 1, Some(1), f_asin));
    r.register(def("acos", 1, Some(1), f_acos));
    r.register(def("atan", 1, Some(1), f_atan));
    r.register(def("atan2", 2, Some(2), f_atan2));
    r.register(def("cot", 1, Some(1), f_cot));
    r.register(def("sign", 1, Some(1), f_sign));
    r.register(def("pi", 0, Some(0), f_pi));
    r.register(def("degrees", 1, Some(1), f_degrees));
    r.register(def("radians", 1, Some(1), f_radians));
    r.register(def("greatest", 1, None, f_greatest));
    r.register(def("least", 1, None, f_least));
    r.register(def("div", 2, Some(2), f_div));
    r.register(def("gcd", 2, Some(2), f_gcd));
    r.register(def("lcm", 2, Some(2), f_lcm));
    r.register(def("factorial", 1, Some(1), f_factorial));
    r.register(def("rand", 0, Some(1), f_rand));
    r.register(def("bit_count", 1, Some(1), f_bit_count));
}

fn f_abs(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Null => Ok(Value::Null),
        Value::Integer(i) => match i.checked_abs() {
            Some(v) => Ok(Value::Integer(v)),
            None => {
                // |i64::MIN| does not fit; the guarded behaviour errors.
                ctx.branch("min-int");
                runtime_err("ABS(): integer overflow")
            }
        },
        Value::Decimal(d) => Ok(Value::Decimal(d.abs())),
        _ => {
            let f = some_or_null!(want_f64(ctx, args, 0)?);
            Ok(Value::Float(f.abs()))
        }
    }
}

fn f_ceil(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Integer(i) => Ok(Value::Integer(*i)),
        Value::Decimal(d) => {
            let t = d.truncate_to_scale(0);
            let needs_bump = !d.is_negative() && &t.truncate_to_scale(d.scale()) != d;
            let out = if needs_bump {
                t.checked_add(&Decimal::one())
                    .map_err(|e| EngineError::Sql(crate::error::SqlError::Runtime(e.to_string())))?
            } else {
                t
            };
            Ok(Value::Decimal(out))
        }
        _ => {
            let f = some_or_null!(want_f64(ctx, args, 0)?);
            Ok(Value::Float(f.ceil()))
        }
    }
}

fn f_floor(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Integer(i) => Ok(Value::Integer(*i)),
        Value::Decimal(d) => {
            let t = d.truncate_to_scale(0);
            let needs_drop = d.is_negative() && &t.truncate_to_scale(d.scale()) != d;
            let out = if needs_drop {
                t.checked_sub(&Decimal::one())
                    .map_err(|e| EngineError::Sql(crate::error::SqlError::Runtime(e.to_string())))?
            } else {
                t
            };
            Ok(Value::Decimal(out))
        }
        _ => {
            let f = some_or_null!(want_f64(ctx, args, 0)?);
            Ok(Value::Float(f.floor()))
        }
    }
}

fn f_round(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let places = if args.len() > 1 {
        some_or_null!(want_int(ctx, args, 1)?)
    } else {
        0
    };
    match &args[0].value {
        Value::Null => Ok(Value::Null),
        Value::Integer(i) => {
            if places >= 0 {
                Ok(Value::Integer(*i))
            } else {
                ctx.branch("negative-places-int");
                let factor = 10i64.checked_pow(places.unsigned_abs().min(18) as u32);
                match factor {
                    None => Ok(Value::Integer(0)),
                    Some(f) => {
                        let half = f / 2;
                        let adj = if *i >= 0 { half } else { -half };
                        Ok(Value::Integer(i.saturating_add(adj) / f * f))
                    }
                }
            }
        }
        Value::Decimal(d) => {
            if places < 0 {
                ctx.branch("negative-places-dec");
                let shifted = d.to_f64() / 10f64.powi((-places).min(300) as i32);
                let back = shifted.round() * 10f64.powi((-places).min(300) as i32);
                return Ok(Value::Float(back));
            }
            let scale = (places as usize).min(soft_types::decimal::MAX_SCALE);
            let out = d
                .round_to_scale(scale)
                .map_err(|e| EngineError::Sql(crate::error::SqlError::Runtime(e.to_string())))?;
            Ok(Value::Decimal(out))
        }
        _ => {
            let f = some_or_null!(want_f64(ctx, args, 0)?);
            let factor = 10f64.powi(places.clamp(-300, 300) as i32);
            Ok(Value::Float((f * factor).round() / factor))
        }
    }
}

fn f_truncate(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let d = some_or_null!(want_decimal(ctx, args, 0)?);
    let places = some_or_null!(want_int(ctx, args, 1)?);
    if places < 0 {
        ctx.branch("negative-places");
        let f = d.to_f64();
        let factor = 10f64.powi((-places).min(300) as i32);
        return Ok(Value::Float((f / factor).trunc() * factor));
    }
    Ok(Value::Decimal(d.truncate_to_scale((places as usize).min(soft_types::decimal::MAX_SCALE))))
}

fn f_mod(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match (&args[0].value, &args[1].value) {
        (Value::Integer(a), Value::Integer(b)) => {
            if *b == 0 {
                // MySQL: MOD by zero is NULL.
                ctx.branch("zero-divisor");
                return Ok(Value::Null);
            }
            Ok(Value::Integer(a.wrapping_rem(*b)))
        }
        _ => {
            let a = some_or_null!(want_decimal(ctx, args, 0)?);
            let b = some_or_null!(want_decimal(ctx, args, 1)?);
            if b.is_zero() {
                ctx.branch("zero-divisor");
                return Ok(Value::Null);
            }
            a.checked_rem(&b)
                .map(Value::Decimal)
                .map_err(|e| EngineError::Sql(crate::error::SqlError::Runtime(e.to_string())))
        }
    }
}

fn f_pow(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_f64(ctx, args, 0)?);
    let b = some_or_null!(want_f64(ctx, args, 1)?);
    let r = a.powf(b);
    if !r.is_finite() {
        ctx.branch("overflow");
        return runtime_err("POW(): result out of range");
    }
    Ok(Value::Float(r))
}

macro_rules! unary_float {
    ($name:ident, $op:expr) => {
        fn $name(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
            let f = some_or_null!(want_f64(ctx, args, 0)?);
            #[allow(clippy::redundant_closure_call)]
            let r: f64 = ($op)(f);
            if r.is_nan() {
                ctx.branch("domain-error");
                return Ok(Value::Null);
            }
            Ok(Value::Float(r))
        }
    };
}

unary_float!(f_sqrt, |f: f64| f.sqrt());
unary_float!(f_cbrt, |f: f64| f.cbrt());
unary_float!(f_exp, |f: f64| f.exp());
unary_float!(f_sin, |f: f64| f.sin());
unary_float!(f_cos, |f: f64| f.cos());
unary_float!(f_tan, |f: f64| f.tan());
unary_float!(f_asin, |f: f64| f.asin());
unary_float!(f_acos, |f: f64| f.acos());
unary_float!(f_atan, |f: f64| f.atan());
unary_float!(f_degrees, |f: f64| f.to_degrees());
unary_float!(f_radians, |f: f64| f.to_radians());

fn f_ln(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let f = some_or_null!(want_f64(ctx, args, 0)?);
    if f <= 0.0 {
        // MySQL: LN of non-positive is NULL (with a warning).
        ctx.branch("non-positive");
        return Ok(Value::Null);
    }
    Ok(Value::Float(f.ln()))
}

fn f_log(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args.len() == 1 {
        return f_ln(ctx, args);
    }
    let base = some_or_null!(want_f64(ctx, args, 0)?);
    let x = some_or_null!(want_f64(ctx, args, 1)?);
    if base <= 0.0 || base == 1.0 || x <= 0.0 {
        ctx.branch("bad-domain");
        return Ok(Value::Null);
    }
    Ok(Value::Float(x.log(base)))
}

fn f_log2(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let f = some_or_null!(want_f64(ctx, args, 0)?);
    if f <= 0.0 {
        ctx.branch("non-positive");
        return Ok(Value::Null);
    }
    Ok(Value::Float(f.log2()))
}

fn f_log10(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let f = some_or_null!(want_f64(ctx, args, 0)?);
    if f <= 0.0 {
        ctx.branch("non-positive");
        return Ok(Value::Null);
    }
    Ok(Value::Float(f.log10()))
}

fn f_atan2(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_f64(ctx, args, 0)?);
    let b = some_or_null!(want_f64(ctx, args, 1)?);
    Ok(Value::Float(a.atan2(b)))
}

fn f_cot(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let f = some_or_null!(want_f64(ctx, args, 0)?);
    let t = f.tan();
    if t == 0.0 {
        ctx.branch("pole");
        return runtime_err("COT(): value out of range");
    }
    Ok(Value::Float(1.0 / t))
}

fn f_sign(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let f = some_or_null!(want_f64(ctx, args, 0)?);
    Ok(Value::Integer(if f > 0.0 {
        1
    } else if f < 0.0 {
        -1
    } else {
        0
    }))
}

fn f_pi(_ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Float(std::f64::consts::PI))
}

fn extremum(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    want_greatest: bool,
) -> Result<Value, EngineError> {
    let mut best: Option<Value> = None;
    for a in args {
        if a.value.is_null() {
            // MySQL: any NULL nulls the result.
            ctx.branch("null-argument");
            return Ok(Value::Null);
        }
        match &best {
            None => best = Some(a.value.clone()),
            Some(b) => {
                let ord = a.value.sql_cmp(b).map_err(|e| {
                    EngineError::Sql(crate::error::SqlError::TypeError(e.to_string()))
                })?;
                if let Some(ord) = ord {
                    let replace = if want_greatest {
                        ord == std::cmp::Ordering::Greater
                    } else {
                        ord == std::cmp::Ordering::Less
                    };
                    if replace {
                        best = Some(a.value.clone());
                    }
                }
            }
        }
    }
    Ok(best.unwrap_or(Value::Null))
}

fn f_greatest(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    extremum(ctx, args, true)
}

fn f_least(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    extremum(ctx, args, false)
}

fn f_div(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_int(ctx, args, 0)?);
    let b = some_or_null!(want_int(ctx, args, 1)?);
    if b == 0 {
        ctx.branch("zero-divisor");
        return Ok(Value::Null);
    }
    if a == i64::MIN && b == -1 {
        ctx.branch("min-overflow");
        return runtime_err("DIV(): integer overflow");
    }
    Ok(Value::Integer(a / b))
}

fn f_gcd(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_int(ctx, args, 0)?);
    let b = some_or_null!(want_int(ctx, args, 1)?);
    let (mut x, mut y) = (a.unsigned_abs(), b.unsigned_abs());
    while y != 0 {
        let t = x % y;
        x = y;
        y = t;
    }
    i64::try_from(x).map(Value::Integer).or_else(|_| {
        ctx.branch("overflow");
        runtime_err("GCD(): result out of range")
    })
}

fn f_lcm(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_int(ctx, args, 0)?);
    let b = some_or_null!(want_int(ctx, args, 1)?);
    if a == 0 || b == 0 {
        ctx.branch("zero");
        return Ok(Value::Integer(0));
    }
    let (mut x, mut y) = (a.unsigned_abs(), b.unsigned_abs());
    let (ox, oy) = (x, y);
    while y != 0 {
        let t = x % y;
        x = y;
        y = t;
    }
    match (ox / x).checked_mul(oy).and_then(|v| i64::try_from(v).ok()) {
        Some(v) => Ok(Value::Integer(v)),
        None => {
            ctx.branch("overflow");
            runtime_err("LCM(): result out of range")
        }
    }
}

fn f_factorial(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let n = some_or_null!(want_int(ctx, args, 0)?);
    if n < 0 {
        ctx.branch("negative");
        return runtime_err("FACTORIAL(): negative argument");
    }
    if n > 20 {
        ctx.branch("overflow");
        return runtime_err("FACTORIAL(): result out of range");
    }
    let mut acc: i64 = 1;
    for i in 2..=n {
        acc *= i;
    }
    Ok(Value::Integer(acc))
}

fn f_rand(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if !args.is_empty() {
        if let Some(seed) = want_int(ctx, args, 0)? {
            ctx.session.rand_state = seed as u64;
        }
    }
    Ok(Value::Float(ctx.session.next_rand()))
}

fn f_bit_count(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let n = some_or_null!(want_int(ctx, args, 0)?);
    Ok(Value::Integer(n.count_ones() as i64))
}
