//! System, session, sequence and network-address built-ins.
//!
//! All session values are deterministic (fixed clock, counter-backed UUIDs,
//! seeded RAND) so campaigns are exactly reproducible.

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::functions::string::some_or_null;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::inet;
use soft_types::value::Value;

fn def(
    name: &'static str,
    cat: C,
    min: usize,
    max: Option<usize>,
    f: ScalarImpl,
) -> FunctionDef {
    FunctionDef {
        name,
        category: cat,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the system / sequence functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("version", C::System, 0, Some(0), f_version));
    r.register(def("database", C::System, 0, Some(0), f_database));
    r.register(def("current_user", C::System, 0, Some(0), f_user));
    r.register(def("user", C::System, 0, Some(0), f_user));
    r.register(def("session_user", C::System, 0, Some(0), f_user));
    r.register(def("connection_id", C::System, 0, Some(0), f_connection_id));
    r.register(def("uuid", C::System, 0, Some(0), f_uuid));
    r.register(def("benchmark", C::Control, 2, Some(2), f_benchmark));
    r.register(def("sleep", C::Control, 1, Some(1), f_sleep));
    r.register(def("last_insert_id", C::System, 0, Some(1), f_last_insert_id));
    r.register(def("found_rows", C::System, 0, Some(0), f_found_rows));
    r.register(def("charset", C::System, 1, Some(1), f_charset));
    r.register(def("collation", C::System, 1, Some(1), f_collation));
    r.register(def("coercibility", C::System, 1, Some(1), f_coercibility));
    r.register(def("typeof", C::System, 1, Some(1), f_typeof));
    r.register(def("inet_aton", C::System, 1, Some(1), f_inet_aton));
    r.register(def("inet_ntoa", C::System, 1, Some(1), f_inet_ntoa));
    r.register(def("inet6_aton", C::System, 1, Some(1), f_inet6_aton));
    r.register(def("inet6_ntoa", C::System, 1, Some(1), f_inet6_ntoa));
    r.register(def("is_ipv4", C::System, 1, Some(1), f_is_ipv4));
    r.register(def("is_ipv6", C::System, 1, Some(1), f_is_ipv6));
    r.register(def("nextval", C::Sequence, 1, Some(1), f_nextval));
    r.register(def("currval", C::Sequence, 1, Some(1), f_currval));
    r.register(def("lastval", C::Sequence, 1, Some(1), f_currval));
    r.register(def("setval", C::Sequence, 2, Some(2), f_setval));
}

fn f_version(_ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Text("soft-engine 0.1.0".into()))
}

fn f_database(_ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Text("main".into()))
}

fn f_user(_ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Text("soft@localhost".into()))
}

fn f_connection_id(_ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Integer(1))
}

fn f_uuid(ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    ctx.session.uuid_counter += 1;
    let n = ctx.session.uuid_counter;
    Ok(Value::Text(format!(
        "00000000-0000-4000-8000-{n:012x}"
    )))
}

fn f_benchmark(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let n = some_or_null!(want_int(ctx, args, 0)?);
    // The expression argument was already evaluated once by the caller;
    // a real BENCHMARK re-evaluates it n times. We only bound the count.
    let _ = ctx.repeat_count(n)?;
    Ok(Value::Integer(0))
}

fn f_sleep(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let secs = some_or_null!(want_f64(ctx, args, 0)?);
    if secs < 0.0 {
        ctx.branch("negative");
        return runtime_err("SLEEP(): negative duration");
    }
    // Never actually sleeps (reproducibility); bounded like a resource.
    if secs > 3600.0 {
        return Err(EngineError::Sql(crate::error::SqlError::ResourceLimit(
            "SLEEP duration too long".into(),
        )));
    }
    Ok(Value::Integer(0))
}

fn f_last_insert_id(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if !args.is_empty() {
        if let Some(v) = want_int(ctx, args, 0)? {
            ctx.session.last_insert_id = v;
        }
    }
    Ok(Value::Integer(ctx.session.last_insert_id))
}

fn f_found_rows(_ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Integer(0))
}

fn f_charset(_ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Text("utf8mb4".into()))
}

fn f_collation(_ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Text("utf8mb4_general_ci".into()))
}

fn f_coercibility(_ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Integer(if args[0].provenance.is_literal() { 4 } else { 2 }))
}

fn f_typeof(_ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Text(args[0].value.data_type().sql_name().to_string()))
}

fn f_inet_aton(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    match inet::inet_aton(&s) {
        Ok(v) => Ok(Value::Integer(v as i64)),
        Err(_) => {
            ctx.branch("bad-address");
            Ok(Value::Null)
        }
    }
}

fn f_inet_ntoa(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let n = some_or_null!(want_int(ctx, args, 0)?);
    match u32::try_from(n) {
        Ok(v) => Ok(Value::Text(inet::inet_ntoa(v))),
        Err(_) => {
            ctx.branch("out-of-range");
            Ok(Value::Null)
        }
    }
}

fn f_inet6_aton(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    match inet::inet6_aton(&s) {
        // The binary return value here is what flows into BOUNDARY in the
        // Listing 11 chain.
        Ok(b) => Ok(Value::Binary(b)),
        Err(_) => {
            ctx.branch("bad-address");
            Ok(Value::Null)
        }
    }
}

fn f_inet6_ntoa(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let b = some_or_null!(want_binary(ctx, args, 0)?);
    match inet::inet6_ntoa(&b) {
        Ok(s) => Ok(Value::Text(s)),
        Err(_) => {
            ctx.branch("bad-blob");
            Ok(Value::Null)
        }
    }
}

fn f_is_ipv4(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Boolean(inet::inet_aton(&s).is_ok()))
}

fn f_is_ipv6(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    Ok(Value::Boolean(s.contains(':') && inet::inet6_aton(&s).is_ok()))
}

fn f_nextval(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let name = some_or_null!(want_text(ctx, args, 0)?);
    let v = ctx.session.sequences.entry(name.to_ascii_lowercase()).or_insert(0);
    *v += 1;
    Ok(Value::Integer(*v))
}

fn f_currval(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let name = some_or_null!(want_text(ctx, args, 0)?);
    match ctx.session.sequences.get(&name.to_ascii_lowercase()) {
        Some(v) => Ok(Value::Integer(*v)),
        None => {
            ctx.branch("unknown-sequence");
            runtime_err(format!("sequence {name} has not been used yet"))
        }
    }
}

fn f_setval(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let name = some_or_null!(want_text(ctx, args, 0)?);
    let v = some_or_null!(want_int(ctx, args, 1)?);
    ctx.session.sequences.insert(name.to_ascii_lowercase(), v);
    Ok(Value::Integer(v))
}
