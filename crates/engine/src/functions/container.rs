//! Array and map built-ins (the DuckDB / ClickHouse surface of Table 4).

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::functions::string::some_or_null;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::value::Value;

fn adef(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Array,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

fn mdef(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Map,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the array and map functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(adef("array_length", 1, Some(1), f_array_length));
    r.register(adef("list_value", 0, None, f_list_value));
    r.register(adef("array_concat", 2, Some(2), f_array_concat));
    r.register(adef("array_append", 2, Some(2), f_array_append));
    r.register(adef("array_prepend", 2, Some(2), f_array_prepend));
    r.register(adef("array_slice", 3, Some(3), f_array_slice));
    r.register(adef("array_contains", 2, Some(2), f_array_contains));
    r.register(adef("array_position", 2, Some(2), f_array_position));
    r.register(adef("array_distinct", 1, Some(1), f_array_distinct));
    r.register(adef("array_reverse", 1, Some(1), f_array_reverse));
    r.register(adef("array_sort", 1, Some(1), f_array_sort));
    r.register(adef("array_min", 1, Some(1), f_array_min));
    r.register(adef("array_max", 1, Some(1), f_array_max));
    r.register(adef("array_sum", 1, Some(1), f_array_sum));
    r.register(adef("element_at", 2, Some(2), f_element_at));
    r.register(mdef("map", 0, None, f_map));
    r.register(mdef("map_keys", 1, Some(1), f_map_keys));
    r.register(mdef("map_values", 1, Some(1), f_map_values));
    r.register(mdef("map_contains_key", 2, Some(2), f_map_contains_key));
    r.register(mdef("map_from_entries", 1, Some(1), f_map_from_entries));
    r.register(mdef("cardinality", 1, Some(1), f_cardinality));
}

fn want_array(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<Vec<Value>>, EngineError> {
    match &args[i].value {
        Value::Null => Ok(None),
        Value::Array(items) => Ok(Some(items.clone())),
        _ => {
            let cast = ctx.cast(&args[i], soft_types::value::DataType::Array, false)?;
            match cast.value {
                Value::Array(items) => Ok(Some(items)),
                Value::Null => Ok(None),
                _ => type_err("expected an array"),
            }
        }
    }
}

fn want_map(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    i: usize,
) -> Result<Option<Vec<(Value, Value)>>, EngineError> {
    match &args[i].value {
        Value::Null => Ok(None),
        Value::Map(entries) => Ok(Some(entries.clone())),
        _ => {
            let cast = ctx.cast(&args[i], soft_types::value::DataType::Map, false)?;
            match cast.value {
                Value::Map(entries) => Ok(Some(entries)),
                Value::Null => Ok(None),
                _ => type_err("expected a map"),
            }
        }
    }
}

fn f_array_length(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_array(ctx, args, 0)?);
    Ok(Value::Integer(a.len() as i64))
}

fn f_list_value(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let v = Value::Array(args.iter().map(|a| a.value.clone()).collect());
    ctx.charge(&v)?;
    Ok(v)
}

fn f_array_concat(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut a = some_or_null!(want_array(ctx, args, 0)?);
    let b = some_or_null!(want_array(ctx, args, 1)?);
    a.extend(b);
    let v = Value::Array(a);
    ctx.charge(&v)?;
    Ok(v)
}

fn f_array_append(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut a = some_or_null!(want_array(ctx, args, 0)?);
    a.push(args[1].value.clone());
    Ok(Value::Array(a))
}

fn f_array_prepend(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut a = some_or_null!(want_array(ctx, args, 1)?);
    a.insert(0, args[0].value.clone());
    Ok(Value::Array(a))
}

fn f_array_slice(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_array(ctx, args, 0)?);
    let begin = some_or_null!(want_int(ctx, args, 1)?);
    let end = some_or_null!(want_int(ctx, args, 2)?);
    let n = a.len() as i64;
    // DuckDB 1-based inclusive slicing; negatives count from the back.
    let norm = |i: i64| -> i64 {
        if i < 0 {
            n + i + 1
        } else {
            i
        }
    };
    let b = norm(begin).max(1);
    let e = norm(end).min(n);
    if b > e {
        ctx.branch("empty-slice");
        return Ok(Value::Array(Vec::new()));
    }
    Ok(Value::Array(a[(b - 1) as usize..e as usize].to_vec()))
}

fn f_array_contains(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_array(ctx, args, 0)?);
    let needle = &args[1].value;
    for item in &a {
        if item
            .sql_cmp(needle)
            .map_err(|e| EngineError::Sql(crate::error::SqlError::TypeError(e.to_string())))?
            == Some(std::cmp::Ordering::Equal)
        {
            return Ok(Value::Boolean(true));
        }
    }
    Ok(Value::Boolean(false))
}

fn f_array_position(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_array(ctx, args, 0)?);
    let needle = &args[1].value;
    for (i, item) in a.iter().enumerate() {
        if item
            .sql_cmp(needle)
            .map_err(|e| EngineError::Sql(crate::error::SqlError::TypeError(e.to_string())))?
            == Some(std::cmp::Ordering::Equal)
        {
            return Ok(Value::Integer(i as i64 + 1));
        }
    }
    ctx.branch("not-found");
    Ok(Value::Null)
}

fn f_array_distinct(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_array(ctx, args, 0)?);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for item in a {
        if seen.insert(item.group_key()) {
            out.push(item);
        }
    }
    Ok(Value::Array(out))
}

fn f_array_reverse(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut a = some_or_null!(want_array(ctx, args, 0)?);
    a.reverse();
    Ok(Value::Array(a))
}

fn f_array_sort(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let mut a = some_or_null!(want_array(ctx, args, 0)?);
    let mut failed = false;
    a.sort_by(|x, y| match x.sql_cmp(y) {
        Ok(Some(o)) => o,
        _ => {
            failed = true;
            std::cmp::Ordering::Equal
        }
    });
    if failed {
        ctx.branch("incomparable");
        return type_err("ARRAY_SORT(): elements are not comparable");
    }
    Ok(Value::Array(a))
}

fn array_extremum(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    greatest: bool,
) -> Result<Value, EngineError> {
    let a = some_or_null!(want_array(ctx, args, 0)?);
    let mut best: Option<Value> = None;
    for item in a {
        if item.is_null() {
            continue;
        }
        match &best {
            None => best = Some(item),
            Some(b) => {
                let ord = item.sql_cmp(b).map_err(|e| {
                    EngineError::Sql(crate::error::SqlError::TypeError(e.to_string()))
                })?;
                let replace = matches!(
                    (ord, greatest),
                    (Some(std::cmp::Ordering::Greater), true)
                        | (Some(std::cmp::Ordering::Less), false)
                );
                if replace {
                    best = Some(item);
                }
            }
        }
    }
    if best.is_none() {
        ctx.branch("all-null-or-empty");
    }
    Ok(best.unwrap_or(Value::Null))
}

fn f_array_min(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    array_extremum(ctx, args, false)
}

fn f_array_max(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    array_extremum(ctx, args, true)
}

fn f_array_sum(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_array(ctx, args, 0)?);
    let mut acc = 0f64;
    let mut any = false;
    for item in a {
        if let Some(f) = item.as_f64() {
            acc += f;
            any = true;
        } else if !item.is_null() {
            ctx.branch("non-numeric");
            return type_err("ARRAY_SUM(): non-numeric element");
        }
    }
    if any {
        Ok(Value::Float(acc))
    } else {
        ctx.branch("empty");
        Ok(Value::Null)
    }
}

fn f_element_at(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Map(entries) => {
            let key = &args[1].value;
            for (k, v) in entries {
                if k.sql_cmp(key)
                    .map_err(|e| EngineError::Sql(crate::error::SqlError::TypeError(e.to_string())))?
                    == Some(std::cmp::Ordering::Equal)
                {
                    return Ok(v.clone());
                }
            }
            ctx.branch("missing-key");
            Ok(Value::Null)
        }
        _ => {
            let a = some_or_null!(want_array(ctx, args, 0)?);
            let i = some_or_null!(want_int(ctx, args, 1)?);
            // 1-based; negative counts from the back (ClickHouse).
            let n = a.len() as i64;
            let idx = if i < 0 { n + i } else { i - 1 };
            if idx < 0 || idx >= n {
                ctx.branch("out-of-range");
                return Ok(Value::Null);
            }
            Ok(a[idx as usize].clone())
        }
    }
}

fn f_map(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if !args.len().is_multiple_of(2) {
        ctx.branch("odd-arity");
        return runtime_err("MAP(): key/value pairs required");
    }
    let mut entries = Vec::with_capacity(args.len() / 2);
    for pair in args.chunks(2) {
        if pair[0].value.is_null() {
            ctx.branch("null-key");
            return runtime_err("MAP(): NULL key");
        }
        entries.push((pair[0].value.clone(), pair[1].value.clone()));
    }
    let v = Value::Map(entries);
    ctx.charge(&v)?;
    Ok(v)
}

fn f_map_keys(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let m = some_or_null!(want_map(ctx, args, 0)?);
    Ok(Value::Array(m.into_iter().map(|(k, _)| k).collect()))
}

fn f_map_values(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let m = some_or_null!(want_map(ctx, args, 0)?);
    Ok(Value::Array(m.into_iter().map(|(_, v)| v).collect()))
}

fn f_map_contains_key(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let m = some_or_null!(want_map(ctx, args, 0)?);
    let key = &args[1].value;
    for (k, _) in &m {
        if k.sql_cmp(key)
            .map_err(|e| EngineError::Sql(crate::error::SqlError::TypeError(e.to_string())))?
            == Some(std::cmp::Ordering::Equal)
        {
            return Ok(Value::Boolean(true));
        }
    }
    Ok(Value::Boolean(false))
}

fn f_map_from_entries(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_array(ctx, args, 0)?);
    let mut entries = Vec::with_capacity(a.len());
    for item in a {
        match item {
            Value::Row(mut kv) if kv.len() == 2 => {
                let v = kv.pop().expect("len 2");
                let k = kv.pop().expect("len 2");
                entries.push((k, v));
            }
            Value::Array(mut kv) if kv.len() == 2 => {
                let v = kv.pop().expect("len 2");
                let k = kv.pop().expect("len 2");
                entries.push((k, v));
            }
            _ => {
                ctx.branch("bad-entry");
                return type_err("MAP_FROM_ENTRIES(): entries must be pairs");
            }
        }
    }
    Ok(Value::Map(entries))
}

fn f_cardinality(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Null => Ok(Value::Null),
        Value::Array(a) => Ok(Value::Integer(a.len() as i64)),
        Value::Map(m) => Ok(Value::Integer(m.len() as i64)),
        _ => {
            ctx.branch("non-container");
            type_err("CARDINALITY(): expected array or map")
        }
    }
}
