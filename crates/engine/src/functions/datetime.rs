//! Date and time built-ins.

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::functions::string::some_or_null;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::datetime::{days_in_month, Date, DateTime, Interval, Time};
use soft_types::value::Value;

fn def(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Date,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the date/time functions.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("now", 0, Some(0), f_now));
    r.register(def("curdate", 0, Some(0), f_curdate));
    r.register(def("curtime", 0, Some(0), f_curtime));
    r.register(def("date", 1, Some(1), f_date));
    r.register(def("time", 1, Some(1), f_time));
    r.register(def("year", 1, Some(1), f_year));
    r.register(def("month", 1, Some(1), f_month));
    r.register(def("day", 1, Some(1), f_day));
    r.register(def("hour", 1, Some(1), f_hour));
    r.register(def("minute", 1, Some(1), f_minute));
    r.register(def("second", 1, Some(1), f_second));
    r.register(def("microsecond", 1, Some(1), f_microsecond));
    r.register(def("dayofweek", 1, Some(1), f_dayofweek));
    r.register(def("weekday", 1, Some(1), f_weekday));
    r.register(def("dayofyear", 1, Some(1), f_dayofyear));
    r.register(def("week", 1, Some(2), f_week));
    r.register(def("quarter", 1, Some(1), f_quarter));
    r.register(def("monthname", 1, Some(1), f_monthname));
    r.register(def("dayname", 1, Some(1), f_dayname));
    r.register(def("datediff", 2, Some(2), f_datediff));
    r.register(def("date_add", 2, Some(2), f_date_add));
    r.register(def("date_sub", 2, Some(2), f_date_sub));
    r.register(def("last_day", 1, Some(1), f_last_day));
    r.register(def("to_days", 1, Some(1), f_to_days));
    r.register(def("from_days", 1, Some(1), f_from_days));
    r.register(def("unix_timestamp", 0, Some(1), f_unix_timestamp));
    r.register(def("from_unixtime", 1, Some(1), f_from_unixtime));
    r.register(def("makedate", 2, Some(2), f_makedate));
    r.register(def("maketime", 3, Some(3), f_maketime));
    r.register(def("date_format", 2, Some(2), f_date_format));
    r.register(def("str_to_date", 2, Some(2), f_str_to_date));
    r.register(def("addtime", 2, Some(2), f_addtime));
    r.register(def("subtime", 2, Some(2), f_subtime));
    r.register(def("sec_to_time", 1, Some(1), f_sec_to_time));
    r.register(def("time_to_sec", 1, Some(1), f_time_to_sec));
    r.register(def("period_add", 2, Some(2), f_period_add));
    r.register(def("period_diff", 2, Some(2), f_period_diff));
    r.register(def("timestampdiff", 3, Some(3), f_timestampdiff));
}

/// Days between year 0001-01-01 (our epoch) and 1970-01-01.
const UNIX_EPOCH_DAYS: i64 = 719162;

fn f_now(ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::DateTime(ctx.session.now))
}

fn f_curdate(ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Date(ctx.session.now.date))
}

fn f_curtime(ctx: &mut FnCtx<'_>, _args: &[Evaluated]) -> Result<Value, EngineError> {
    Ok(Value::Time(ctx.session.now.time))
}

fn f_date(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let dt = some_or_null!(want_datetime(ctx, args, 0)?);
    Ok(Value::Date(dt.date))
}

fn f_time(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Time(t) => Ok(Value::Time(*t)),
        _ => {
            let dt = some_or_null!(want_datetime(ctx, args, 0)?);
            Ok(Value::Time(dt.time))
        }
    }
}

macro_rules! date_part {
    ($name:ident, $get:expr) => {
        fn $name(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
            let dt = some_or_null!(want_datetime(ctx, args, 0)?);
            #[allow(clippy::redundant_closure_call)]
            let v: i64 = ($get)(&dt);
            Ok(Value::Integer(v))
        }
    };
}

date_part!(f_year, |dt: &DateTime| dt.date.year() as i64);
date_part!(f_month, |dt: &DateTime| dt.date.month() as i64);
date_part!(f_day, |dt: &DateTime| dt.date.day() as i64);
date_part!(f_hour, |dt: &DateTime| dt.time.hour() as i64);
date_part!(f_minute, |dt: &DateTime| dt.time.minute() as i64);
date_part!(f_second, |dt: &DateTime| dt.time.second() as i64);
date_part!(f_microsecond, |dt: &DateTime| dt.time.micros() as i64);
date_part!(f_dayofyear, |dt: &DateTime| dt.date.day_of_year() as i64);
date_part!(f_quarter, |dt: &DateTime| dt.date.quarter() as i64);
// MySQL DAYOFWEEK: 1 = Sunday ... 7 = Saturday.
date_part!(f_dayofweek, |dt: &DateTime| ((dt.date.weekday() + 1) % 7) as i64 + 1);
// MySQL WEEKDAY: 0 = Monday ... 6 = Sunday.
date_part!(f_weekday, |dt: &DateTime| dt.date.weekday() as i64);

fn f_week(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let dt = some_or_null!(want_datetime(ctx, args, 0)?);
    if args.len() > 1 {
        let _mode = some_or_null!(want_int(ctx, args, 1)?);
    }
    Ok(Value::Integer(dt.date.iso_week() as i64))
}

const MONTHS: [&str; 12] = [
    "January", "February", "March", "April", "May", "June", "July", "August", "September",
    "October", "November", "December",
];
const DAYS: [&str; 7] =
    ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"];

fn f_monthname(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let dt = some_or_null!(want_datetime(ctx, args, 0)?);
    Ok(Value::Text(MONTHS[dt.date.month() as usize - 1].to_string()))
}

fn f_dayname(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let dt = some_or_null!(want_datetime(ctx, args, 0)?);
    Ok(Value::Text(DAYS[dt.date.weekday() as usize].to_string()))
}

fn f_datediff(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_datetime(ctx, args, 0)?);
    let b = some_or_null!(want_datetime(ctx, args, 1)?);
    Ok(Value::Integer(a.date.days_from_epoch() - b.date.days_from_epoch()))
}

fn add_interval(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    negate: bool,
) -> Result<Value, EngineError> {
    let dt = some_or_null!(want_datetime(ctx, args, 0)?);
    let iv = some_or_null!(want_interval(ctx, args, 1)?);
    let iv = if negate { iv.neg() } else { iv };
    match dt.add_interval(&iv) {
        Ok(out) => {
            // Collapse to a date when there is no time component involved.
            if out.time == Time::MIDNIGHT && iv.micros == 0 {
                ctx.branch("date-result");
                Ok(Value::Date(out.date))
            } else {
                Ok(Value::DateTime(out))
            }
        }
        Err(_) => {
            ctx.branch("out-of-range");
            Ok(Value::Null)
        }
    }
}

fn f_date_add(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    add_interval(ctx, args, false)
}

fn f_date_sub(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    add_interval(ctx, args, true)
}

fn f_last_day(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let dt = some_or_null!(want_datetime(ctx, args, 0)?);
    Ok(Value::Date(dt.date.last_day()))
}

fn f_to_days(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let dt = some_or_null!(want_datetime(ctx, args, 0)?);
    // MySQL TO_DAYS counts from year 0; our epoch is 0001-01-01 = day 366.
    Ok(Value::Integer(dt.date.days_from_epoch() + 366))
}

fn f_from_days(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let n = some_or_null!(want_int(ctx, args, 0)?);
    match Date::from_days_from_epoch(n - 366) {
        Ok(d) => Ok(Value::Date(d)),
        Err(_) => {
            ctx.branch("out-of-range");
            Ok(Value::Null)
        }
    }
}

fn f_unix_timestamp(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let dt = if args.is_empty() {
        ctx.session.now
    } else {
        some_or_null!(want_datetime(ctx, args, 0)?)
    };
    let days = dt.date.days_from_epoch() - UNIX_EPOCH_DAYS;
    let secs = days * 86_400 + dt.time.micros_from_midnight() / 1_000_000;
    Ok(Value::Integer(secs))
}

fn f_from_unixtime(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let secs = some_or_null!(want_int(ctx, args, 0)?);
    let us = secs
        .checked_mul(1_000_000)
        .and_then(|v| v.checked_add(UNIX_EPOCH_DAYS * 86_400_000_000));
    match us.and_then(|v| DateTime::from_micros_from_epoch(v).ok()) {
        Some(dt) => Ok(Value::DateTime(dt)),
        None => {
            ctx.branch("out-of-range");
            Ok(Value::Null)
        }
    }
}

fn f_makedate(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let year = some_or_null!(want_int(ctx, args, 0)?);
    let doy = some_or_null!(want_int(ctx, args, 1)?);
    if doy < 1 {
        ctx.branch("non-positive-day");
        return Ok(Value::Null);
    }
    let year32 = match i32::try_from(year) {
        Ok(y) if (1..=9999).contains(&y) => y,
        _ => {
            ctx.branch("year-out-of-range");
            return Ok(Value::Null);
        }
    };
    let start = Date::new(year32, 1, 1).expect("jan 1 valid");
    match start.add_days(doy - 1) {
        Ok(d) => Ok(Value::Date(d)),
        Err(_) => {
            ctx.branch("overflow");
            Ok(Value::Null)
        }
    }
}

fn f_maketime(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let h = some_or_null!(want_int(ctx, args, 0)?);
    let m = some_or_null!(want_int(ctx, args, 1)?);
    let s = some_or_null!(want_int(ctx, args, 2)?);
    match (u8::try_from(h), u8::try_from(m), u8::try_from(s)) {
        (Ok(h), Ok(m), Ok(s)) => match Time::new(h, m, s, 0) {
            Ok(t) => Ok(Value::Time(t)),
            Err(_) => {
                ctx.branch("component-out-of-range");
                Ok(Value::Null)
            }
        },
        _ => {
            ctx.branch("component-out-of-range");
            Ok(Value::Null)
        }
    }
}

/// `DATE_FORMAT` with the common MySQL specifiers.
fn f_date_format(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let dt = some_or_null!(want_datetime(ctx, args, 0)?);
    let fmt = some_or_null!(want_text(ctx, args, 1)?);
    let mut out = String::new();
    let mut chars = fmt.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            None => {
                ctx.branch("trailing-percent");
                break;
            }
            Some('Y') => out.push_str(&format!("{:04}", dt.date.year())),
            Some('y') => out.push_str(&format!("{:02}", dt.date.year() % 100)),
            Some('m') => out.push_str(&format!("{:02}", dt.date.month())),
            Some('c') => out.push_str(&dt.date.month().to_string()),
            Some('d') => out.push_str(&format!("{:02}", dt.date.day())),
            Some('e') => out.push_str(&dt.date.day().to_string()),
            Some('H') => out.push_str(&format!("{:02}", dt.time.hour())),
            Some('i') => out.push_str(&format!("{:02}", dt.time.minute())),
            Some('s') | Some('S') => out.push_str(&format!("{:02}", dt.time.second())),
            Some('f') => out.push_str(&format!("{:06}", dt.time.micros())),
            Some('M') => out.push_str(MONTHS[dt.date.month() as usize - 1]),
            Some('b') => out.push_str(&MONTHS[dt.date.month() as usize - 1][..3]),
            Some('W') => out.push_str(DAYS[dt.date.weekday() as usize]),
            Some('a') => out.push_str(&DAYS[dt.date.weekday() as usize][..3]),
            Some('j') => out.push_str(&format!("{:03}", dt.date.day_of_year())),
            Some('u') => out.push_str(&format!("{:02}", dt.date.iso_week())),
            Some('%') => out.push('%'),
            Some(other) => {
                ctx.branch("unknown-specifier");
                out.push(other);
            }
        }
    }
    Ok(Value::Text(out))
}

/// `STR_TO_DATE` for the `%Y`/`%m`/`%d`/`%H`/`%i`/`%s` specifiers.
fn f_str_to_date(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let s = some_or_null!(want_text(ctx, args, 0)?);
    let fmt = some_or_null!(want_text(ctx, args, 1)?);
    let mut year = 2000i32;
    let mut month = 1u8;
    let mut day = 1u8;
    let mut hour = 0u8;
    let mut minute = 0u8;
    let mut second = 0u8;
    let mut has_time = false;
    let mut has_date = false;
    let sb: Vec<char> = s.chars().collect();
    let mut si = 0usize;
    let mut fchars = fmt.chars().peekable();
    let read_num = |si: &mut usize, max_digits: usize| -> Option<i64> {
        let start = *si;
        let mut end = start;
        while end < sb.len() && end - start < max_digits && sb[end].is_ascii_digit() {
            end += 1;
        }
        if end == start {
            return None;
        }
        let v: i64 = sb[start..end].iter().collect::<String>().parse().ok()?;
        *si = end;
        Some(v)
    };
    while let Some(c) = fchars.next() {
        if c == '%' {
            match fchars.next() {
                Some('Y') => {
                    let v = match read_num(&mut si, 4) {
                        Some(v) => v,
                        None => {
                            ctx.branch("bad-year");
                            return Ok(Value::Null);
                        }
                    };
                    year = v as i32;
                    has_date = true;
                }
                Some('m') | Some('c') => {
                    match read_num(&mut si, 2) {
                        Some(v) => month = v as u8,
                        None => return Ok(Value::Null),
                    }
                    has_date = true;
                }
                Some('d') | Some('e') => {
                    match read_num(&mut si, 2) {
                        Some(v) => day = v as u8,
                        None => return Ok(Value::Null),
                    }
                    has_date = true;
                }
                Some('H') => {
                    match read_num(&mut si, 2) {
                        Some(v) => hour = v as u8,
                        None => return Ok(Value::Null),
                    }
                    has_time = true;
                }
                Some('i') => {
                    match read_num(&mut si, 2) {
                        Some(v) => minute = v as u8,
                        None => return Ok(Value::Null),
                    }
                    has_time = true;
                }
                Some('s') | Some('S') => {
                    match read_num(&mut si, 2) {
                        Some(v) => second = v as u8,
                        None => return Ok(Value::Null),
                    }
                    has_time = true;
                }
                _ => {
                    ctx.branch("unknown-specifier");
                    return Ok(Value::Null);
                }
            }
        } else {
            if si >= sb.len() || sb[si] != c {
                ctx.branch("literal-mismatch");
                return Ok(Value::Null);
            }
            si += 1;
        }
    }
    let date = match Date::new(year, month, day) {
        Ok(d) => d,
        Err(_) => {
            ctx.branch("invalid-date");
            return Ok(Value::Null);
        }
    };
    let time = match Time::new(hour, minute, second, 0) {
        Ok(t) => t,
        Err(_) => {
            ctx.branch("invalid-time");
            return Ok(Value::Null);
        }
    };
    if has_time || !has_date {
        Ok(Value::DateTime(DateTime::new(date, time)))
    } else {
        Ok(Value::Date(date))
    }
}

fn time_arith(
    ctx: &mut FnCtx<'_>,
    args: &[Evaluated],
    negate: bool,
) -> Result<Value, EngineError> {
    let base = some_or_null!(want_datetime(ctx, args, 0)?);
    let t = match &args[1].value {
        Value::Time(t) => *t,
        Value::Null => return Ok(Value::Null),
        _ => {
            let s = some_or_null!(want_text(ctx, args, 1)?);
            match Time::parse(&s) {
                Ok(t) => t,
                Err(_) => {
                    ctx.branch("bad-time");
                    return Ok(Value::Null);
                }
            }
        }
    };
    let delta = t.micros_from_midnight() * if negate { -1 } else { 1 };
    match base.add_interval(&Interval { months: 0, days: 0, micros: delta }) {
        Ok(dt) => Ok(Value::DateTime(dt)),
        Err(_) => {
            ctx.branch("out-of-range");
            Ok(Value::Null)
        }
    }
}

fn f_addtime(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    time_arith(ctx, args, false)
}

fn f_subtime(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    time_arith(ctx, args, true)
}

fn f_sec_to_time(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let secs = some_or_null!(want_int(ctx, args, 0)?);
    if !(0..86_400).contains(&secs) {
        ctx.branch("out-of-range");
        return Ok(Value::Null);
    }
    Ok(Value::Time(
        Time::from_micros_from_midnight(secs * 1_000_000).expect("validated range"),
    ))
}

fn f_time_to_sec(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    match &args[0].value {
        Value::Time(t) => Ok(Value::Integer(t.micros_from_midnight() / 1_000_000)),
        Value::Null => Ok(Value::Null),
        _ => {
            let s = some_or_null!(want_text(ctx, args, 0)?);
            match Time::parse(&s) {
                Ok(t) => Ok(Value::Integer(t.micros_from_midnight() / 1_000_000)),
                Err(_) => {
                    ctx.branch("bad-time");
                    Ok(Value::Null)
                }
            }
        }
    }
}

fn f_period_add(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let p = some_or_null!(want_int(ctx, args, 0)?);
    let n = some_or_null!(want_int(ctx, args, 1)?);
    let (y, m) = (p / 100, p % 100);
    if !(1..=12).contains(&m) || y < 0 {
        ctx.branch("bad-period");
        return Ok(Value::Null);
    }
    let total = y * 12 + (m - 1) + n;
    if total < 0 {
        ctx.branch("underflow");
        return Ok(Value::Null);
    }
    Ok(Value::Integer((total / 12) * 100 + total % 12 + 1))
}

fn f_period_diff(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let a = some_or_null!(want_int(ctx, args, 0)?);
    let b = some_or_null!(want_int(ctx, args, 1)?);
    let to_months = |p: i64| -> Option<i64> {
        let (y, m) = (p / 100, p % 100);
        if (1..=12).contains(&m) && y >= 0 {
            Some(y * 12 + m - 1)
        } else {
            None
        }
    };
    match (to_months(a), to_months(b)) {
        (Some(x), Some(y)) => Ok(Value::Integer(x - y)),
        _ => {
            ctx.branch("bad-period");
            Ok(Value::Null)
        }
    }
}

fn f_timestampdiff(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    // TIMESTAMPDIFF('unit', from, to) — unit as a string for parser
    // simplicity.
    let unit = some_or_null!(want_text(ctx, args, 0)?).to_ascii_uppercase();
    let a = some_or_null!(want_datetime(ctx, args, 1)?);
    let b = some_or_null!(want_datetime(ctx, args, 2)?);
    let us = b.micros_from_epoch() - a.micros_from_epoch();
    let months = (b.date.year() as i64 * 12 + b.date.month() as i64)
        - (a.date.year() as i64 * 12 + a.date.month() as i64);
    Ok(Value::Integer(match unit.as_str() {
        "MICROSECOND" => us,
        "SECOND" => us / 1_000_000,
        "MINUTE" => us / 60_000_000,
        "HOUR" => us / 3_600_000_000,
        "DAY" => us / 86_400_000_000,
        "WEEK" => us / (7 * 86_400_000_000),
        "MONTH" => months,
        "QUARTER" => months / 3,
        "YEAR" => months / 12,
        _ => {
            ctx.branch("unknown-unit");
            return runtime_err(format!("unknown TIMESTAMPDIFF unit {unit}"));
        }
    }))
}

/// Days in month helper exposed for tests.
pub fn month_len(year: i32, month: u8) -> u8 {
    days_in_month(year, month)
}
