//! The built-in SQL function library.
//!
//! Roughly 190 canonical implementations across the paper's categories.
//! Dialects pick a subset and layer aliases on top (`soft-dialects`).

pub mod aggregate;
pub mod casting;
pub mod condition;
pub mod container;
pub mod datetime;
pub mod json_fns;
pub mod math;
pub mod spatial;
pub mod string;
pub mod system;
pub mod xml_fns;

use crate::registry::FunctionRegistry;

/// Registers every built-in under its canonical name.
pub fn install_all(r: &mut FunctionRegistry) {
    string::install(r);
    math::install(r);
    condition::install(r);
    system::install(r);
    datetime::install(r);
    json_fns::install(r);
    xml_fns::install(r);
    spatial::install(r);
    container::install(r);
    casting::install(r);
    aggregate::install(r);
}

/// Adds the widely shared alias spellings (MySQL-style synonyms).
pub fn install_common_aliases(r: &mut FunctionRegistry) {
    r.alias("ucase", "upper");
    r.alias("lcase", "lower");
    r.alias("character_length", "char_length");
    r.alias("substring", "substr");
    r.alias("mid", "substr");
    r.alias("power", "pow");
    r.alias("ceiling", "ceil");
    r.alias("current_date", "curdate");
    r.alias("current_time", "curtime");
    r.alias("current_timestamp", "now");
    r.alias("localtime", "now");
    r.alias("localtimestamp", "now");
    r.alias("adddate", "date_add");
    r.alias("subdate", "date_sub");
    r.alias("dayofmonth", "day");
    r.alias("schema", "database");
    r.alias("geomfromtext", "st_geomfromtext");
    r.alias("astext", "st_astext");
    r.alias("aswkb", "st_aswkb");
    r.alias("geomfromwkb", "st_geomfromwkb");
    r.alias("numpoints", "st_numpoints");
    r.alias("glength", "st_length");
    r.alias("area", "st_area");
    r.alias("envelope", "st_envelope");
    r.alias("st_boundary", "boundary");
    r.alias("dimension", "st_dimension");
    r.alias("json_merge_preserve", "json_merge");
    r.alias("len", "length");
    r.alias("list_contains", "array_contains");
    r.alias("list_slice", "array_slice");
    r.alias("regexp_matches", "regexp_like");
    r.alias("rlike", "regexp_like");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_library_size() {
        let mut r = FunctionRegistry::new();
        install_all(&mut r);
        let canonical = r.defs().len();
        assert!(
            canonical >= 180,
            "expected at least 180 canonical builtins, found {canonical}"
        );
        install_common_aliases(&mut r);
        assert!(r.name_count() > canonical);
    }

    #[test]
    fn every_category_is_represented() {
        use soft_types::category::FunctionCategory as C;
        let mut r = FunctionRegistry::new();
        install_all(&mut r);
        for cat in [
            C::String,
            C::Aggregate,
            C::Math,
            C::Date,
            C::Json,
            C::Xml,
            C::Spatial,
            C::Condition,
            C::Casting,
            C::System,
            C::Sequence,
            C::Array,
            C::Map,
            C::Comparison,
            C::Control,
        ] {
            assert!(
                r.defs().iter().any(|d| d.category == cat),
                "no builtin registered for category {cat}"
            );
        }
    }

    #[test]
    fn arity_bounds_are_sane() {
        let mut r = FunctionRegistry::new();
        install_all(&mut r);
        for d in r.defs() {
            if let Some(max) = d.max_args {
                assert!(d.min_args <= max, "{}: min {} > max {max}", d.name, d.min_args);
            }
        }
    }
}
