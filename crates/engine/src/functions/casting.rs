//! Conversion-helper built-ins — including ClickHouse's `toDecimalString`,
//! the function of the paper's Listing 1 (null pointer dereference when a
//! crafted precision argument is passed).

use crate::error::EngineError;
use crate::eval::Evaluated;
use crate::functions::string::some_or_null;
use crate::registry::*;
use soft_types::category::FunctionCategory as C;
use soft_types::value::{DataType, Value};

fn def(name: &'static str, min: usize, max: Option<usize>, f: ScalarImpl) -> FunctionDef {
    FunctionDef {
        name,
        category: C::Casting,
        min_args: min,
        max_args: max,
        implementation: FunctionImpl::Scalar(f),
    }
}

/// Registers the conversion helpers.
pub fn install(r: &mut FunctionRegistry) {
    r.register(def("to_char", 1, Some(2), f_to_char));
    r.register(def("to_number", 1, Some(1), f_to_number));
    r.register(def("to_date", 1, Some(1), f_to_date));
    r.register(def("todecimalstring", 2, Some(2), f_to_decimal_string));
    r.register(def("tostring", 1, Some(1), f_tostring));
    r.register(def("toint64", 1, Some(1), f_toint64));
    r.register(def("tofloat64", 1, Some(1), f_tofloat64));
    r.register(def("try_cast", 2, Some(2), f_try_cast));
    r.register(def("tojsonstring", 1, Some(1), f_tojsonstring));
}

fn f_to_char(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        return Ok(Value::Null);
    }
    let cast = ctx.cast(&args[0], DataType::Text, true)?;
    Ok(cast.value)
}

fn f_to_number(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        return Ok(Value::Null);
    }
    let cast = ctx.cast(&args[0], DataType::Decimal, true)?;
    Ok(cast.value)
}

fn f_to_date(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        return Ok(Value::Null);
    }
    let cast = ctx.cast(&args[0], DataType::Date, true)?;
    Ok(cast.value)
}

/// `toDecimalString(value, precision)`: render a number with a fixed number
/// of fractional digits. The guarded implementation validates the precision
/// argument is a sane non-negative integer — the missing check behind the
/// Listing 1 NPD.
fn f_to_decimal_string(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let d = some_or_null!(want_decimal(ctx, args, 0)?);
    let precision = some_or_null!(want_int(ctx, args, 1)?);
    if precision < 0 {
        ctx.branch("negative-precision");
        return runtime_err("toDecimalString(): negative precision");
    }
    if precision as usize > soft_types::decimal::MAX_SCALE * 2 {
        ctx.branch("precision-too-large");
        return runtime_err("toDecimalString(): precision too large");
    }
    let scale = (precision as usize).min(soft_types::decimal::MAX_SCALE);
    let out = d
        .round_to_scale(scale)
        .map_err(|e| EngineError::Sql(crate::error::SqlError::Runtime(e.to_string())))?;
    Ok(Value::Text(out.to_string()))
}

fn f_tostring(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        return Ok(Value::Null);
    }
    Ok(ctx.cast(&args[0], DataType::Text, true)?.value)
}

fn f_toint64(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        return Ok(Value::Null);
    }
    Ok(ctx.cast(&args[0], DataType::Integer, true)?.value)
}

fn f_tofloat64(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        return Ok(Value::Null);
    }
    Ok(ctx.cast(&args[0], DataType::Float, true)?.value)
}

fn f_try_cast(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    let ty_name = some_or_null!(want_text(ctx, args, 1)?);
    let Some(ty) = DataType::parse_sql_name(&ty_name) else {
        ctx.branch("unknown-type");
        return runtime_err(format!("TRY_CAST(): unknown type {ty_name}"));
    };
    match ctx.cast(&args[0], ty, true) {
        Ok(v) => Ok(v.value),
        Err(EngineError::Sql(_)) => {
            ctx.branch("cast-failed");
            Ok(Value::Null)
        }
        Err(crash) => Err(crash),
    }
}

fn f_tojsonstring(ctx: &mut FnCtx<'_>, args: &[Evaluated]) -> Result<Value, EngineError> {
    if args[0].value.is_null() {
        return Ok(Value::Null);
    }
    let j = ctx.cast(&args[0], DataType::Json, true)?;
    match j.value {
        Value::Json(j) => Ok(Value::Text(j.to_json_string())),
        other => Ok(Value::Text(other.render())),
    }
}
