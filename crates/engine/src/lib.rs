//! The SQL engine substrate for the SOFT reproduction.
//!
//! An in-memory SQL engine with the three-stage pipeline the paper's
//! root-cause analysis is organised around (parse / optimize / execute), a
//! provenance-carrying evaluator, roughly 190 built-in functions across the
//! paper's categories, feature-branch coverage of the function component,
//! a crash model where injected faults surface as values, and the fault-
//! predicate language the dialect corpus is written in.
//!
//! # Examples
//!
//! ```
//! use soft_engine::{Engine, ExecOutcome};
//!
//! let mut e = Engine::with_default_functions(Default::default());
//! match e.execute("SELECT JSON_LENGTH('[1,2,3]', '$[2]')") {
//!     ExecOutcome::Rows(rs) => assert_eq!(rs.rows[0][0].render(), "1"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod coverage;
pub mod error;
pub mod eval;
pub mod executor;
pub mod fault;
pub mod functions;
pub mod regex;
pub mod registry;

mod engine;

pub use batch::{BatchArena, ShapeKey, MIN_BATCH_GROUP};
pub use coverage::Coverage;
pub use engine::{Engine, EngineConfig, Prepared};
pub use error::{CrashKind, CrashReport, ExecOutcome, ResultSet, SqlError, Stage};
pub use eval::{Evaluated, Provenance};
pub use fault::{
    FaultSet, FaultSite, FaultSpec, LogicQuirkSpec, PatternId, ProvPred, QuirkEffect, Trigger,
    ValuePred,
};
pub use registry::{FunctionDef, FunctionRegistry, Limits};

// Thread-safety audit for the sharded campaign runner: every worker owns a
// private `Engine`, so the engine and everything it transitively holds must
// cross thread boundaries. The registry stores plain `fn` pointers, faults
// and session state are owned data, and nothing uses interior mutability —
// enforced here at compile time so a regression (an `Rc`, a `RefCell`, a
// raw pointer) fails the build instead of the campaign.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<FaultSet>();
    assert_send_sync::<FunctionRegistry>();
    assert_send_sync::<Coverage>();
    assert_send_sync::<CrashReport>();
    assert_send_sync::<registry::SessionState>();
};
