//! Errors, crash reports and the execution-outcome model.
//!
//! The central design decision of the reproduction: **crashes are values**.
//! Where the paper's SOFT observes a DBMS process dying (and classifies the
//! death from the sanitizer report), our engine surfaces an injected fault as
//! an [`ExecOutcome::Crash`] carrying the same classification. Ordinary SQL
//! errors — including resource-limit kills, the source of the paper's seven
//! false positives — stay on the [`ExecOutcome::Error`] side.

use soft_types::value::Value;
use std::fmt;

/// The DBMS processing stage (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// SQL text → AST.
    Parsing,
    /// AST → plan (constant folding, rewrites).
    Optimization,
    /// Plan execution.
    Execution,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Parsing => "parsing",
            Stage::Optimization => "optimization",
            Stage::Execution => "execution",
        })
    }
}

/// Memory-error classification, matching the paper's Table 4 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CrashKind {
    /// NPD.
    NullPointerDereference,
    /// SEGV.
    SegmentationViolation,
    /// HBOF.
    HeapBufferOverflow,
    /// GBOF.
    GlobalBufferOverflow,
    /// UAF.
    UseAfterFree,
    /// SO.
    StackOverflow,
    /// DBZ.
    DivideByZero,
    /// AF.
    AssertionFailure,
}

impl CrashKind {
    /// All kinds, in Table 4's legend order.
    pub const ALL: [CrashKind; 8] = [
        CrashKind::NullPointerDereference,
        CrashKind::SegmentationViolation,
        CrashKind::UseAfterFree,
        CrashKind::HeapBufferOverflow,
        CrashKind::GlobalBufferOverflow,
        CrashKind::AssertionFailure,
        CrashKind::StackOverflow,
        CrashKind::DivideByZero,
    ];

    /// The paper's abbreviation (NPD, SEGV, ...).
    pub fn abbrev(&self) -> &'static str {
        match self {
            CrashKind::NullPointerDereference => "NPD",
            CrashKind::SegmentationViolation => "SEGV",
            CrashKind::HeapBufferOverflow => "HBOF",
            CrashKind::GlobalBufferOverflow => "GBOF",
            CrashKind::UseAfterFree => "UAF",
            CrashKind::StackOverflow => "SO",
            CrashKind::DivideByZero => "DBZ",
            CrashKind::AssertionFailure => "AF",
        }
    }

    /// Parses an abbreviation.
    pub fn from_abbrev(s: &str) -> Option<CrashKind> {
        CrashKind::ALL.into_iter().find(|k| k.abbrev() == s)
    }
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// What a sanitizer report would have said: the injected fault that fired.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashReport {
    /// Stable identifier of the fault (deduplication key — the analogue of
    /// a crash signature / top stack frame).
    pub fault_id: String,
    /// Crash classification.
    pub kind: CrashKind,
    /// Stage the crash occurred in.
    pub stage: Stage,
    /// Function being processed, if any.
    pub function: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CrashReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {} stage", self.kind, self.stage)?;
        if let Some(func) = &self.function {
            write!(f, " ({func})")?;
        }
        write!(f, ": {} [{}]", self.message, self.fault_id)
    }
}

/// An ordinary (non-crash) SQL error.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lex/parse failure.
    Parse(String),
    /// Unknown table/column/function, arity mismatch, ...
    Semantic(String),
    /// Type mismatch / failed conversion.
    TypeError(String),
    /// Runtime evaluation error (bad argument value, overflow, ...).
    Runtime(String),
    /// The statement was killed by a resource limit (memory, output size).
    /// Distinguishable from crashes — the paper's false-positive class.
    ResourceLimit(String),
    /// Feature the engine does not implement.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
            SqlError::TypeError(m) => write!(f, "type error: {m}"),
            SqlError::Runtime(m) => write!(f, "runtime error: {m}"),
            SqlError::ResourceLimit(m) => write!(f, "resource limit exceeded: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Internal error channel: either an SQL error or a crash propagating to the
/// top of the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Ordinary error.
    Sql(SqlError),
    /// An injected fault fired.
    Crash(CrashReport),
}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> Self {
        EngineError::Sql(e)
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Sql(e) => write!(f, "{e}"),
            EngineError::Crash(c) => write!(f, "CRASH: {c}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A query result set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Column names.
    pub columns: Vec<String>,
    /// Row values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// The single value of a 1×1 result, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }
}

/// The observable outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A SELECT produced rows.
    Rows(ResultSet),
    /// A DDL/DML statement succeeded.
    Ok(String),
    /// The statement failed with an ordinary error.
    Error(SqlError),
    /// The DBMS "crashed": an injected fault fired.
    Crash(CrashReport),
}

impl ExecOutcome {
    /// True for the crash outcome.
    pub fn is_crash(&self) -> bool {
        matches!(self, ExecOutcome::Crash(_))
    }

    /// The crash report, if this is a crash.
    pub fn crash(&self) -> Option<&CrashReport> {
        match self {
            ExecOutcome::Crash(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_kind_abbrevs_roundtrip() {
        for k in CrashKind::ALL {
            assert_eq!(CrashKind::from_abbrev(k.abbrev()), Some(k));
        }
        assert_eq!(CrashKind::from_abbrev("XYZ"), None);
    }

    #[test]
    fn crash_report_display() {
        let c = CrashReport {
            fault_id: "mysql-avg-gbof".into(),
            kind: CrashKind::GlobalBufferOverflow,
            stage: Stage::Execution,
            function: Some("avg".into()),
            message: "oversized decimal literal".into(),
        };
        let s = c.to_string();
        assert!(s.contains("GBOF"));
        assert!(s.contains("avg"));
        assert!(s.contains("mysql-avg-gbof"));
    }

    #[test]
    fn scalar_extraction() {
        let rs = ResultSet {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Integer(7)]],
        };
        assert_eq!(rs.scalar(), Some(&Value::Integer(7)));
        let empty = ResultSet::default();
        assert_eq!(empty.scalar(), None);
    }

    #[test]
    fn resource_limits_are_errors_not_crashes() {
        let o = ExecOutcome::Error(SqlError::ResourceLimit("1 GiB".into()));
        assert!(!o.is_crash());
    }
}
