//! Edge-case battery over the built-in function library: every test drives
//! a boundary condition of the kind §5 of the paper is about, and asserts
//! the *guarded* behaviour — a value, a NULL, or an error, never a panic or
//! a crash outcome on the fault-free engine.

use soft_engine::{Engine, ExecOutcome, SqlError};

fn engine() -> Engine {
    Engine::with_default_functions(Default::default())
}

fn scalar(e: &mut Engine, sql: &str) -> String {
    match e.execute(sql) {
        ExecOutcome::Rows(rs) => rs
            .scalar()
            .unwrap_or_else(|| panic!("{sql}: not scalar"))
            .render(),
        other => panic!("{sql}: unexpected {other:?}"),
    }
}

fn error(e: &mut Engine, sql: &str) -> SqlError {
    match e.execute(sql) {
        ExecOutcome::Error(err) => err,
        other => panic!("{sql}: expected error, got {other:?}"),
    }
}

#[test]
fn null_propagation_is_uniform() {
    // Every unary scalar function must map NULL to NULL (or a defined
    // constant like QUOTE's 'NULL'), never panic.
    let mut e = engine();
    for f in [
        "UPPER", "LOWER", "LENGTH", "REVERSE", "TRIM", "HEX", "ASCII", "SOUNDEX", "ABS", "CEIL",
        "FLOOR", "SQRT", "EXP", "SIGN", "YEAR", "MONTH", "DAY", "LAST_DAY", "JSON_VALID",
        "JSON_DEPTH", "ST_ASTEXT", "INET_ATON", "INET6_ATON", "TO_BASE64", "MD5", "SPACE",
        "ARRAY_LENGTH", "CARDINALITY",
    ] {
        let out = e.execute(&format!("SELECT {f}(NULL)"));
        match out {
            ExecOutcome::Rows(rs) => {
                let v = rs.scalar().expect("scalar").render();
                assert!(
                    v == "NULL" || f == "QUOTE",
                    "{f}(NULL) = {v}, expected NULL"
                );
            }
            other => panic!("{f}(NULL): {other:?}"),
        }
    }
}

#[test]
fn empty_string_boundaries() {
    // The P1.1 `''` boundary across categories.
    let mut e = engine();
    assert_eq!(scalar(&mut e, "SELECT LENGTH('')"), "0");
    assert_eq!(scalar(&mut e, "SELECT ASCII('')"), "0");
    assert_eq!(scalar(&mut e, "SELECT REVERSE('')"), "");
    assert_eq!(scalar(&mut e, "SELECT UPPER('')"), "");
    assert_eq!(scalar(&mut e, "SELECT SOUNDEX('')"), "");
    assert_eq!(scalar(&mut e, "SELECT REPEAT('', 1000)"), "");
    assert_eq!(scalar(&mut e, "SELECT TRIM('')"), "");
    assert_eq!(scalar(&mut e, "SELECT HEX('')"), "");
    assert_eq!(scalar(&mut e, "SELECT JSON_VALID('')"), "0");
    assert!(matches!(error(&mut e, "SELECT YEAR('')"), SqlError::TypeError(_)));
    assert!(matches!(
        error(&mut e, "SELECT ST_GEOMFROMTEXT('')"),
        SqlError::Runtime(_)
    ));
}

#[test]
fn star_arguments_are_rejected_by_guards() {
    // `*` reaching a guarded implementation is a type error (the unguarded
    // behaviour lives only in the fault corpus).
    let mut e = engine();
    for sql in [
        "SELECT UPPER(*)",
        "SELECT ABS(*)",
        "SELECT CONTAINS('x', 'x', *)",
        "SELECT toDecimalString(1.5, *)",
        "SELECT JSON_VALID(*)",
    ] {
        assert!(
            matches!(error(&mut e, sql), SqlError::TypeError(_)),
            "{sql} should be a type error"
        );
    }
    // But COUNT(*) is the defined exception.
    assert_eq!(scalar(&mut e, "SELECT COUNT(*)"), "1");
}

#[test]
fn extreme_numeric_boundaries() {
    let mut e = engine();
    // i64 edges.
    assert_eq!(
        scalar(&mut e, "SELECT ABS(-9223372036854775807)"),
        "9223372036854775807"
    );
    // `-9223372036854775808` does not fit i64 as a bare literal, so it
    // arrives as a decimal and ABS succeeds on the wider representation.
    assert_eq!(
        scalar(&mut e, "SELECT ABS(-9223372036854775808)"),
        "9223372036854775808"
    );
    // i64::MIN cannot round-trip through the integer coercion (the literal
    // parses as a decimal whose magnitude exceeds i64::MAX), so the guarded
    // DIV reports a type error rather than overflowing.
    assert!(matches!(
        error(&mut e, "SELECT DIV(-9223372036854775808, -1)"),
        SqlError::TypeError(_) | SqlError::Runtime(_)
    ));
    // 45-digit literals survive as decimals.
    let big = "9".repeat(45);
    assert_eq!(scalar(&mut e, &format!("SELECT ABS(-{big})")), big);
    // Beyond the 81-digit decimal cap the literal degrades to a float, not
    // an error (matching MySQL's overflow-to-double).
    let over = "9".repeat(100);
    let v = scalar(&mut e, &format!("SELECT {over} * 0"));
    assert_eq!(v, "0");
    // Round-trip of the paper's 48-digit MDEV-8407 value.
    let mdev = "123456789012345678901234567890123456789012346789";
    assert_eq!(scalar(&mut e, &format!("SELECT {mdev}")), mdev);
}

#[test]
fn deep_nesting_boundaries() {
    let mut e = engine();
    // JSON at and beyond the depth guard.
    let ok = format!("SELECT JSON_DEPTH('{}1{}')", "[".repeat(63), "]".repeat(63));
    assert_eq!(scalar(&mut e, &ok), "64");
    let deep = format!("SELECT JSON_DEPTH('{}')", "[".repeat(200));
    assert!(matches!(error(&mut e, &deep), SqlError::TypeError(_)));
    // XML depth guard.
    let xml_deep = format!(
        "SELECT XML_VALID('{}x{}')",
        "<a>".repeat(100),
        "</a>".repeat(100)
    );
    assert_eq!(scalar(&mut e, &xml_deep), "0");
    // Parser expression-depth guard.
    let paren_bomb = format!("SELECT {}1{}", "(".repeat(1000), ")".repeat(1000));
    assert!(matches!(error(&mut e, &paren_bomb), SqlError::Parse(_)));
}

#[test]
fn substr_index_boundaries() {
    let mut e = engine();
    for (sql, want) in [
        ("SELECT SUBSTR('abc', 1, 0)", ""),
        ("SELECT SUBSTR('abc', 1, -5)", ""),
        ("SELECT SUBSTR('abc', 99)", ""),
        ("SELECT SUBSTR('abc', -99)", ""),
        ("SELECT SUBSTR('abc', -1)", "c"),
        ("SELECT LEFT('abc', 0)", ""),
        ("SELECT LEFT('abc', -1)", ""),
        ("SELECT LEFT('abc', 99)", "abc"),
        ("SELECT RIGHT('abc', 99)", "abc"),
        ("SELECT INSERT('abc', 0, 1, 'X')", "abc"),
        ("SELECT INSERT('abc', 99, 1, 'X')", "abc"),
        ("SELECT ELT(0, 'a')", "NULL"),
        ("SELECT ELT(99, 'a')", "NULL"),
        ("SELECT LOCATE('a', 'banana', 0)", "0"),
        ("SELECT LOCATE('a', 'banana', 99)", "0"),
    ] {
        assert_eq!(scalar(&mut e, sql), want, "{sql}");
    }
}

#[test]
fn pad_and_repeat_boundaries() {
    let mut e = engine();
    assert_eq!(scalar(&mut e, "SELECT LPAD('abc', 2, '*')"), "ab");
    assert_eq!(scalar(&mut e, "SELECT LPAD('abc', 0, '*')"), "");
    assert_eq!(scalar(&mut e, "SELECT LPAD('abc', -1, '*')"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT LPAD('abc', 5, '')"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT REPEAT('x', 0)"), "");
    assert_eq!(scalar(&mut e, "SELECT REPEAT('x', -5)"), "");
    // Exceeding the repetition limit is a resource error.
    assert!(matches!(
        error(&mut e, "SELECT REPEAT('x', 99999999999)"),
        SqlError::ResourceLimit(_)
    ));
    assert!(matches!(
        error(&mut e, "SELECT SPACE(99999999999)"),
        SqlError::ResourceLimit(_)
    ));
}

#[test]
fn date_boundaries() {
    let mut e = engine();
    // Calendar edges.
    assert_eq!(scalar(&mut e, "SELECT LAST_DAY('2024-02-01')"), "2024-02-29");
    assert_eq!(scalar(&mut e, "SELECT LAST_DAY('2023-02-01')"), "2023-02-28");
    assert_eq!(scalar(&mut e, "SELECT LAST_DAY('1900-02-01')"), "1900-02-28");
    assert_eq!(scalar(&mut e, "SELECT LAST_DAY('2000-02-01')"), "2000-02-29");
    // Date range edges: additions past the supported range are NULL.
    assert_eq!(
        scalar(&mut e, "SELECT DATE_ADD('9999-12-31', INTERVAL 1 DAY)"),
        "NULL"
    );
    assert_eq!(
        scalar(&mut e, "SELECT DATE_SUB('0001-01-01', INTERVAL 1 DAY)"),
        "NULL"
    );
    // Out-of-range components.
    assert_eq!(scalar(&mut e, "SELECT MAKEDATE(2024, 0)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT MAKEDATE(99999, 1)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT MAKETIME(25, 0, 0)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT SEC_TO_TIME(-1)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT SEC_TO_TIME(86400)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT PERIOD_ADD(202413, 1)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT FROM_DAYS(0)"), "NULL");
    // Format-string edge cases.
    assert_eq!(
        scalar(&mut e, "SELECT DATE_FORMAT('2024-01-02', '%%Y')"),
        "%Y"
    );
    assert_eq!(scalar(&mut e, "SELECT STR_TO_DATE('xx', '%Y')"), "NULL");
}

#[test]
fn json_path_boundaries() {
    let mut e = engine();
    // The Listing 10 path beyond the document: NULL, not a crash.
    assert_eq!(
        scalar(&mut e, "SELECT JSON_LENGTH('[1, 2]', '$[2][1]')"),
        "NULL"
    );
    assert_eq!(scalar(&mut e, "SELECT JSON_EXTRACT('[1]', '$[99]')"), "NULL");
    // Malformed paths are runtime errors.
    assert!(matches!(
        error(&mut e, "SELECT JSON_LENGTH('[1]', 'nope')"),
        SqlError::Runtime(_)
    ));
    assert!(matches!(
        error(&mut e, "SELECT JSON_LENGTH('[1]', '$[')"),
        SqlError::Runtime(_)
    ));
    // Odd arity of pair-wise builders.
    assert!(matches!(
        error(&mut e, "SELECT JSON_OBJECT('k')"),
        SqlError::Runtime(_)
    ));
    assert!(matches!(
        error(&mut e, "SELECT COLUMN_CREATE('k')"),
        SqlError::Semantic(_) | SqlError::Runtime(_)
    ));
    // NULL keys are rejected.
    assert!(matches!(
        error(&mut e, "SELECT JSON_OBJECT(NULL, 1)"),
        SqlError::Runtime(_)
    ));
}

#[test]
fn geometry_boundaries() {
    let mut e = engine();
    // Degenerate geometries.
    assert_eq!(
        scalar(&mut e, "SELECT ST_ASTEXT(BOUNDARY(POINT(1, 1)))"),
        "GEOMETRYCOLLECTION EMPTY"
    );
    assert_eq!(scalar(&mut e, "SELECT ST_LENGTH(POINT(1, 1))"), "0");
    assert_eq!(scalar(&mut e, "SELECT ST_AREA(ST_GEOMFROMTEXT('LINESTRING(0 0,1 1)'))"), "0");
    // Non-geometry binary is rejected at the cast.
    assert!(matches!(
        error(&mut e, "SELECT ST_ASTEXT(INET6_ATON('::1'))"),
        SqlError::TypeError(_)
    ));
    assert!(matches!(
        error(&mut e, "SELECT ST_GEOMFROMWKB(x'FFFFFFFF')"),
        SqlError::Runtime(_) | SqlError::TypeError(_)
    ));
    // BOUNDARY of a collection is undefined.
    assert!(matches!(
        error(
            &mut e,
            "SELECT BOUNDARY(ST_GEOMFROMTEXT('GEOMETRYCOLLECTION(POINT(1 1))'))"
        ),
        SqlError::Runtime(_)
    ));
}

#[test]
fn inet_boundaries() {
    let mut e = engine();
    assert_eq!(scalar(&mut e, "SELECT INET_ATON('255.255.255.255')"), "4294967295");
    assert_eq!(scalar(&mut e, "SELECT INET_ATON('256.0.0.1')"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT INET_NTOA(-1)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT INET_NTOA(4294967296)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT INET6_ATON(':::')"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT INET6_NTOA(x'0102')"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT IS_IPV6('::')"), "1");
}

#[test]
fn aggregate_boundaries() {
    let mut e = engine();
    e.execute("CREATE TABLE agg (v INTEGER)");
    // All-NULL column.
    e.execute("INSERT INTO agg VALUES (NULL), (NULL)");
    assert_eq!(scalar(&mut e, "SELECT SUM(v) FROM agg"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT AVG(v) FROM agg"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT COUNT(v) FROM agg"), "0");
    assert_eq!(scalar(&mut e, "SELECT GROUP_CONCAT(v) FROM agg"), "NULL");
    // The 64-digit AVG literal (Listing 6's shape) stays exact.
    let lit = format!("1.{}", "2".repeat(63));
    let avg = scalar(&mut e, &format!("SELECT AVG({lit})"));
    assert!(avg.starts_with("1.2222"), "{avg}");
    // DISTINCT-with-text aggregate (Listing 8's shape).
    assert_eq!(
        scalar(&mut e, "SELECT JSON_OBJECTAGG(DISTINCT 'a', 'abc')"),
        "{\"a\":\"abc\"}"
    );
    // Aggregates of aggregates are rejected.
    assert!(matches!(
        error(&mut e, "SELECT SUM(COUNT(v)) FROM agg"),
        SqlError::Semantic(_)
    ));
}

#[test]
fn casting_boundaries() {
    let mut e = engine();
    assert_eq!(scalar(&mut e, "SELECT CAST('' AS INTEGER)"), "0");
    assert_eq!(scalar(&mut e, "SELECT CAST('-' AS INTEGER)"), "0");
    assert_eq!(scalar(&mut e, "SELECT CAST('  7  ' AS INTEGER)"), "7");
    assert_eq!(scalar(&mut e, "SELECT CAST(TRUE AS INTEGER)"), "1");
    assert_eq!(scalar(&mut e, "SELECT CAST(20240229 AS DATE)"), "2024-02-29");
    assert!(matches!(
        error(&mut e, "SELECT CAST(20230229 AS DATE)"),
        SqlError::TypeError(_)
    ));
    assert_eq!(scalar(&mut e, "SELECT toDecimalString(0, 0)"), "0");
    assert!(matches!(
        error(&mut e, "SELECT toDecimalString(1.5, -1)"),
        SqlError::Runtime(_)
    ));
    assert!(matches!(
        error(&mut e, "SELECT toDecimalString(1.5, 999999)"),
        SqlError::Runtime(_)
    ));
}

#[test]
fn division_and_domain_boundaries() {
    let mut e = engine();
    assert_eq!(scalar(&mut e, "SELECT 1 / 0"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT 1.5 / 0.0"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT MOD(5, 0)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT 5 % 0"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT LOG(1, 10)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT LOG(-2, 10)"), "NULL");
    assert_eq!(scalar(&mut e, "SELECT ASIN(2)"), "NULL");
    assert!(matches!(error(&mut e, "SELECT FACTORIAL(21)"), SqlError::Runtime(_)));
    assert!(matches!(error(&mut e, "SELECT FACTORIAL(-1)"), SqlError::Runtime(_)));
    assert!(matches!(error(&mut e, "SELECT POW(10, 10000)"), SqlError::Runtime(_)));
}

#[test]
fn row_type_boundaries() {
    // MDEV-14596's class: ROW values reaching scalar contexts.
    let mut e = engine();
    assert!(matches!(
        error(&mut e, "SELECT INTERVAL(ROW(1,1), ROW(1,2))"),
        SqlError::TypeError(_)
    ));
    assert!(matches!(
        error(&mut e, "SELECT ROW(1,2) = ROW(1,2)"),
        SqlError::TypeError(_)
    ));
    assert!(matches!(
        error(&mut e, "SELECT GREATEST(ROW(1,1), ROW(1,2))"),
        SqlError::TypeError(_)
    ));
    assert_eq!(scalar(&mut e, "SELECT TYPEOF(ROW(1, 2))"), "ROW");
}

#[test]
fn sequence_boundaries() {
    let mut e = engine();
    assert!(matches!(
        error(&mut e, "SELECT CURRVAL('never_used')"),
        SqlError::Runtime(_)
    ));
    assert_eq!(scalar(&mut e, "SELECT NEXTVAL('s')"), "1");
    assert_eq!(scalar(&mut e, "SELECT SETVAL('s', -5)"), "-5");
    assert_eq!(scalar(&mut e, "SELECT NEXTVAL('s')"), "-4");
}

#[test]
fn union_type_alignment_edges() {
    let mut e = engine();
    // Numeric widening keeps values comparable.
    match e.execute("SELECT 1 UNION ALL SELECT 2.5 ORDER BY 1") {
        ExecOutcome::Rows(rs) => {
            assert_eq!(rs.rows.len(), 2);
        }
        other => panic!("{other:?}"),
    }
    // NULL-only branches adopt the other side's type.
    match e.execute("SELECT NULL UNION ALL SELECT 7") {
        ExecOutcome::Rows(rs) => {
            assert_eq!(rs.rows[1][0].render(), "7");
        }
        other => panic!("{other:?}"),
    }
    // Column-count mismatch is a semantic error.
    assert!(matches!(
        error(&mut e, "SELECT 1, 2 UNION SELECT 3"),
        SqlError::Semantic(_)
    ));
}
