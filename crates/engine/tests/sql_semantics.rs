//! SQL semantics battery: the relational behaviour baseline fuzzers depend
//! on (grouping, distinct, union, subqueries, ordering, three-valued logic).

use soft_engine::{Engine, ExecOutcome, SqlError};
use soft_types::value::Value;

fn engine() -> Engine {
    let mut e = Engine::with_default_functions(Default::default());
    e.execute("CREATE TABLE emp (dept TEXT, name TEXT, salary INTEGER)");
    e.execute(
        "INSERT INTO emp VALUES \
         ('eng', 'ada', 120), ('eng', 'bob', 100), ('ops', 'cy', 90), \
         ('ops', 'dee', 90), ('hr', 'eve', NULL)",
    );
    e
}

fn rows(e: &mut Engine, sql: &str) -> Vec<Vec<String>> {
    match e.execute(sql) {
        ExecOutcome::Rows(rs) => rs
            .rows
            .iter()
            .map(|r| r.iter().map(Value::render).collect())
            .collect(),
        other => panic!("{sql}: {other:?}"),
    }
}

#[test]
fn group_by_partitions_and_orders() {
    let mut e = engine();
    let got = rows(
        &mut e,
        "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept ORDER BY dept",
    );
    assert_eq!(
        got,
        vec![
            vec!["eng".to_string(), "2".into(), "220".into()],
            vec!["hr".into(), "1".into(), "NULL".into()],
            vec!["ops".into(), "2".into(), "180".into()],
        ]
    );
}

#[test]
fn having_filters_groups_not_rows() {
    let mut e = engine();
    let got = rows(
        &mut e,
        "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept",
    );
    assert_eq!(got, vec![vec!["eng".to_string()], vec!["ops".into()]]);
}

#[test]
fn distinct_semantics() {
    let mut e = engine();
    assert_eq!(rows(&mut e, "SELECT DISTINCT dept FROM emp").len(), 3);
    assert_eq!(rows(&mut e, "SELECT DISTINCT salary FROM emp").len(), 4); // 120,100,90,NULL
    assert_eq!(
        rows(&mut e, "SELECT COUNT(DISTINCT salary) FROM emp"),
        vec![vec!["3".to_string()]] // NULLs don't count
    );
}

#[test]
fn where_three_valued_logic_excludes_unknown() {
    let mut e = engine();
    // eve's NULL salary is neither > 95 nor <= 95.
    let above = rows(&mut e, "SELECT name FROM emp WHERE salary > 95");
    let below = rows(&mut e, "SELECT name FROM emp WHERE NOT (salary > 95)");
    assert_eq!(above.len() + below.len(), 4);
    let isnull = rows(&mut e, "SELECT name FROM emp WHERE (salary > 95) IS NULL");
    assert_eq!(isnull, vec![vec!["eve".to_string()]]);
}

#[test]
fn order_by_places_nulls_first_and_respects_desc() {
    let mut e = engine();
    let asc = rows(&mut e, "SELECT salary FROM emp ORDER BY salary");
    assert_eq!(asc[0][0], "NULL");
    assert_eq!(asc.last().expect("rows")[0], "120");
    let desc = rows(&mut e, "SELECT salary FROM emp ORDER BY salary DESC");
    assert_eq!(desc[0][0], "120");
}

#[test]
fn union_dedups_and_union_all_keeps() {
    let mut e = engine();
    assert_eq!(
        rows(&mut e, "SELECT dept FROM emp UNION SELECT dept FROM emp").len(),
        3
    );
    assert_eq!(
        rows(&mut e, "SELECT dept FROM emp UNION ALL SELECT dept FROM emp").len(),
        10
    );
}

#[test]
fn scalar_and_exists_subqueries() {
    let mut e = engine();
    assert_eq!(
        rows(&mut e, "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"),
        vec![vec!["ada".to_string()]]
    );
    assert_eq!(
        rows(&mut e, "SELECT EXISTS (SELECT 1 FROM emp WHERE dept = 'hr')"),
        vec![vec!["1".to_string()]]
    );
    assert_eq!(
        rows(&mut e, "SELECT EXISTS (SELECT 1 FROM emp WHERE dept = 'legal')"),
        vec![vec!["0".to_string()]]
    );
}

#[test]
fn from_subquery_composes() {
    let mut e = engine();
    let got = rows(
        &mut e,
        "SELECT dept, total FROM \
         (SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept) sums \
         WHERE total > 100 ORDER BY total DESC",
    );
    assert_eq!(
        got,
        vec![vec!["eng".to_string(), "220".into()], vec!["ops".into(), "180".into()]]
    );
}

#[test]
fn qualified_and_aliased_columns() {
    let mut e = engine();
    assert_eq!(
        rows(&mut e, "SELECT emp.name FROM emp WHERE emp.dept = 'hr'"),
        vec![vec!["eve".to_string()]]
    );
    assert_eq!(
        rows(&mut e, "SELECT e.name FROM emp AS e WHERE e.dept = 'hr'"),
        vec![vec!["eve".to_string()]]
    );
    assert_eq!(
        rows(&mut e, "SELECT salary AS pay FROM emp ORDER BY pay DESC LIMIT 1"),
        vec![vec!["120".to_string()]]
    );
}

#[test]
fn insert_type_checking_and_constraints() {
    let mut e = engine();
    e.execute("CREATE TABLE strictcol (n INTEGER NOT NULL)");
    assert!(matches!(
        e.execute("INSERT INTO strictcol VALUES (NULL)"),
        ExecOutcome::Error(SqlError::Semantic(_))
    ));
    assert!(matches!(
        e.execute("INSERT INTO strictcol VALUES (1, 2)"),
        ExecOutcome::Error(SqlError::Semantic(_))
    ));
    assert!(matches!(
        e.execute("INSERT INTO strictcol (missing) VALUES (1)"),
        ExecOutcome::Error(SqlError::Semantic(_))
    ));
    // Values are coerced to the column type on insert.
    e.execute("INSERT INTO strictcol VALUES ('7')");
    assert_eq!(rows(&mut e, "SELECT n FROM strictcol"), vec![vec!["7".to_string()]]);
}

#[test]
fn aggregates_mixed_with_scalars_in_projection() {
    let mut e = engine();
    let got = rows(
        &mut e,
        "SELECT UPPER(dept), MAX(salary) FROM emp GROUP BY dept ORDER BY 2 DESC",
    );
    assert_eq!(got[0], vec!["ENG".to_string(), "120".into()]);
}

#[test]
fn group_by_expression_keys() {
    let mut e = engine();
    let got = rows(
        &mut e,
        "SELECT LENGTH(dept), COUNT(*) FROM emp GROUP BY LENGTH(dept) ORDER BY 1",
    );
    // 'hr' (2), 'eng'/'ops' (3).
    assert_eq!(
        got,
        vec![vec!["2".to_string(), "1".into()], vec!["3".into(), "4".into()]]
    );
}

#[test]
fn limit_zero_and_overshoot() {
    let mut e = engine();
    assert!(rows(&mut e, "SELECT name FROM emp LIMIT 0").is_empty());
    assert_eq!(rows(&mut e, "SELECT name FROM emp LIMIT 999").len(), 5);
}

#[test]
fn case_insensitive_identifiers_and_keywords() {
    let mut e = engine();
    assert_eq!(
        rows(&mut e, "select NAME from EMP where DEPT = 'hr'"),
        vec![vec!["eve".to_string()]]
    );
}

#[test]
fn select_star_expansion() {
    let mut e = engine();
    let got = rows(&mut e, "SELECT * FROM emp WHERE name = 'ada'");
    assert_eq!(got, vec![vec!["eng".to_string(), "ada".into(), "120".into()]]);
    assert!(matches!(
        e.execute("SELECT *"),
        ExecOutcome::Error(SqlError::Semantic(_))
    ));
}
