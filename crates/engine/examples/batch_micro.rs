//! Micro-profile: scalar vs batch per-row cost at varying group sizes.
use soft_engine::{BatchArena, Engine};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let template = Engine::with_default_functions(Default::default());
    for sql in ["SELECT UPPER('boundary')", "SELECT ABS(-42)", "SELECT CONCAT('a', 'b', 'c')"] {
        let p = template.prepare(sql).expect("parses");
        let iters = 200_000u32;
        let mut e = template.clone();
        let t = Instant::now();
        for _ in 0..iters {
            black_box(e.execute_prepared(&p));
        }
        let scalar_ns = t.elapsed().as_nanos() as f64 / iters as f64;

        for n in [2usize, 4, 8, 64, 256] {
            let members: Vec<&_> = (0..n).map(|_| &p).collect();
            let mut e = template.clone();
            let mut arena = BatchArena::new();
            let reps = (iters as usize / n).max(1) as u32;
            let t = Instant::now();
            for _ in 0..reps {
                black_box(e.execute_batch_in(&members, &mut arena));
            }
            let per_row = t.elapsed().as_nanos() as f64 / (reps as f64 * n as f64);
            println!(
                "{sql:<32} n={n:<4} scalar {scalar_ns:7.0} ns/stmt  batch {per_row:7.0} ns/stmt  ({:.2}x)",
                scalar_ns / per_row
            );
        }
    }
}
