//! Cross-dialect behavioural tests: the per-target differences the paper's
//! evaluation leans on.

use soft_dialects::{DialectId, DialectProfile};
use soft_engine::{ExecOutcome, PatternId};

#[test]
fn every_dialect_runs_the_shared_seed_suite() {
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        let mut engine = profile.engine();
        let mut errors = 0usize;
        for sql in &profile.seed_corpus {
            match engine.execute(sql) {
                ExecOutcome::Crash(c) => panic!("{id:?}: seed `{sql}` crashed: {c}"),
                ExecOutcome::Error(_) => errors += 1,
                _ => {}
            }
        }
        // A few dialect-specific queries may fail on other targets'
        // strictness; the suite must still be overwhelmingly green.
        assert!(
            errors * 5 <= profile.seed_corpus.len(),
            "{id:?}: {errors}/{} seed statements errored",
            profile.seed_corpus.len()
        );
    }
}

#[test]
fn dialect_catalogs_differ_in_surface() {
    let get = |id: DialectId| DialectProfile::build(id);
    let ch = get(DialectId::Clickhouse);
    let pg = get(DialectId::Postgres);
    let my = get(DialectId::Mysql);
    let mo = get(DialectId::Monetdb);
    // ClickHouse-only camelCase spellings.
    assert!(ch.registry.resolve("arrayDistinct").is_some());
    assert!(pg.registry.resolve("arrayDistinct").is_none());
    // MySQL/MariaDB dynamic columns are not in PostgreSQL or DuckDB.
    assert!(get(DialectId::Mariadb).registry.resolve("column_json").is_some());
    assert!(pg.registry.resolve("column_json").is_none());
    // MonetDB's slim profile drops XML and spatial surfaces.
    assert!(mo.registry.resolve("updatexml").is_none());
    assert!(mo.registry.resolve("boundary").is_none());
    assert!(my.registry.resolve("updatexml").is_some());
    // PostgreSQL spellings.
    assert!(pg.registry.resolve("jsonb_object_keys").is_some());
    assert!(my.registry.resolve("jsonb_object_keys").is_none());
}

#[test]
fn same_query_differs_across_strictness() {
    // The §7.3 PostgreSQL story, end to end.
    let cases = [
        "SELECT UPPER(123)",
        "SELECT LENGTH(1.5)",
        "SELECT REVERSE(42)",
    ];
    let mut pg = DialectProfile::build(DialectId::Postgres).engine();
    let mut my = DialectProfile::build(DialectId::Mysql).engine();
    for sql in cases {
        assert!(
            matches!(pg.execute(sql), ExecOutcome::Error(_)),
            "{sql} should fail under strict casting"
        );
        assert!(
            matches!(my.execute(sql), ExecOutcome::Rows(_)),
            "{sql} should succeed under lenient casting"
        );
    }
}

#[test]
fn fault_sites_name_registered_functions() {
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        for fault in &profile.faults {
            let soft_engine::FaultSite::Function(name) = &fault.spec.site else {
                continue;
            };
            assert!(
                profile.registry.resolve(name).is_some(),
                "{id:?}: fault {} targets unregistered function {name}",
                fault.spec.id
            );
        }
    }
}

#[test]
fn per_dialect_pattern_distribution_matches_table4_rows() {
    // Spot-check the per-dialect credited-pattern histograms against the
    // published rows.
    let expect: &[(DialectId, &[(PatternId, usize)])] = &[
        (DialectId::Postgres, &[(PatternId::P2_3, 1)]),
        (
            DialectId::Clickhouse,
            &[(PatternId::P1_2, 3), (PatternId::P2_3, 2), (PatternId::P3_1, 1)],
        ),
        (
            DialectId::Mysql,
            &[
                (PatternId::P1_3, 1),
                (PatternId::P2_1, 1),
                (PatternId::P3_2, 3),
                (PatternId::P3_3, 11),
            ],
        ),
    ];
    for (id, hist) in expect {
        let profile = DialectProfile::build(*id);
        for (pattern, want) in *hist {
            let got = profile.faults.iter().filter(|f| f.spec.pattern == *pattern).count();
            assert_eq!(got, *want, "{id:?} {pattern}");
        }
    }
}

#[test]
fn witnesses_do_not_cross_dialects() {
    // A MariaDB witness must not crash the MySQL target (different corpus),
    // even though the engines share implementations.
    let mariadb = DialectProfile::build(DialectId::Mariadb);
    let mysql = DialectProfile::build(DialectId::Mysql);
    let mut cross_crashes = 0usize;
    for fault in &mariadb.faults {
        let mut engine = mysql.engine();
        if engine.execute(&fault.witness).is_crash() {
            cross_crashes += 1;
        }
    }
    // Most witnesses are dialect-specific; a few may coincide when both
    // corpora placed similar triggers on shared functions.
    assert!(
        cross_crashes <= mariadb.faults.len() / 4,
        "{cross_crashes}/{} MariaDB witnesses crashed MySQL",
        mariadb.faults.len()
    );
}

#[test]
fn documentation_and_catalog_agree() {
    for id in DialectId::ALL {
        let profile = DialectProfile::build(id);
        assert_eq!(profile.documentation.len(), profile.registry.name_count());
        for doc in &profile.documentation {
            assert!(profile.registry.resolve(&doc.name).is_some(), "{id:?}: {}", doc.name);
        }
    }
}

#[test]
fn engines_reset_cleanly_after_crashes() {
    let profile = DialectProfile::build(DialectId::Virtuoso);
    let mut engine = profile.engine();
    for fault in profile.faults.iter().take(10) {
        assert!(engine.execute(&fault.witness).is_crash());
        engine.reset_database();
        // The engine keeps working after the "restart".
        assert!(matches!(
            engine.execute("SELECT UPPER('ok')"),
            ExecOutcome::Rows(_)
        ));
    }
    assert_eq!(engine.crash_log().len(), 10);
}
