//! Synthetic "documentation" for each dialect: one example function
//! expression per exposed function name.
//!
//! SOFT's first step "extracts all SQL function names from the documentation
//! of the DBMS" (§7.1). Real vendor docs are not shipped here, so each
//! dialect's documentation is synthesised from its registry: every resolvable
//! name gets a minimal, well-typed example call. These examples must execute
//! cleanly (no crash) on the dialect's faulty engine — the corpus tests
//! enforce that — because the paper's bugs were *unknown*, i.e. not triggered
//! by the vendors' own examples.

use soft_engine::registry::{FunctionDef, FunctionRegistry};
use soft_types::category::FunctionCategory as C;

/// A documented function: its name (as exposed by the dialect) and one
/// example call expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocFunction {
    /// Exposed (possibly alias) name.
    pub name: String,
    /// Example expression, e.g. `UPPER('abc')`.
    pub example: String,
}

/// Example argument templates per category; argument `i` of an example call
/// uses `templates(cat)[i % len]`.
fn templates(cat: C) -> &'static [&'static str] {
    match cat {
        C::String => &["'abc'", "2", "3", "'x'"],
        C::Comparison => &["'abc'", "'abd'"],
        C::Math => &["1.5", "2"],
        C::Aggregate => &["1", "','"],
        C::Date => &["'2024-01-15'", "'%Y-%m-%d'", "'2024-02-20'"],
        C::Json => &["'{\"a\": 1}'", "'$.a'", "'one'"],
        C::Xml => &["'<a><b>x</b></a>'", "'/a/b'", "'<c></c>'"],
        C::Spatial => &["'POINT(1 2)'", "'POINT(3 4)'"],
        C::Condition => &["1", "2", "3", "4"],
        C::Casting => &["'12'", "2"],
        C::System => &["'10.0.0.1'", "1"],
        C::Sequence => &["'seq1'", "5"],
        C::Array => &["[1, 2, 3]", "2", "3"],
        C::Map => &["'k'", "1", "'v'", "2"],
        C::Control => &["1", "2"],
    }
}

/// Per-function argument overrides where the category default would error.
fn override_args(canonical: &str) -> Option<&'static [&'static str]> {
    Some(match canonical {
        "if" => &["1", "'yes'", "'no'"],
        "nullif" => &["1", "2"],
        "ifnull" | "nvl" => &["NULL", "1"],
        "nvl2" => &["1", "'a'", "'b'"],
        "decode" => &["1", "1", "'one'"],
        "interval" => &["3", "1", "2", "5"],
        "sha2" => &["'abc'", "256"],
        "format" => &["1234.567", "2"],
        "insert" => &["'hello'", "2", "2", "'XY'"],
        "elt" => &["1", "'a'", "'b'"],
        "field" => &["'b'", "'a'", "'b'"],
        "find_in_set" => &["'b'", "'a,b,c'"],
        "export_set" => &["5", "'Y'", "'N'"],
        "chr" => &["65"],
        "char" => &["65", "66"],
        "space" => &["3"],
        "repeat" => &["'ab'", "3"],
        "split_part" => &["'a,b,c'", "','", "2"],
        "translate" => &["'abc'", "'ab'", "'xy'"],
        "regexp_like" | "regexp_substr" | "regexp_instr" => &["'abc123'", "'[0-9]+'"],
        "regexp_replace" => &["'abc123'", "'[0-9]+'", "'#'"],
        "contains" => &["'haystack'", "'hay'"],
        "locate" => &["'b'", "'abc'"],
        "position" => &["'b'", "'abc'"],
        "lpad" | "rpad" => &["'ab'", "5", "'*'"],
        "unhex" => &["'4142'"],
        "from_base64" => &["'YWJj'"],
        "mod" | "pow" | "atan2" | "gcd" | "lcm" | "div" => &["7", "3"],
        "round" | "truncate" => &["1.456", "2"],
        "log" => &["2.718"],
        "factorial" => &["5"],
        "rand" => &["42"],
        "makedate" => &["2024", "60"],
        "maketime" => &["12", "30", "15"],
        "period_add" | "period_diff" => &["202401", "3"],
        "timestampdiff" => &["'DAY'", "'2024-01-01'", "'2024-02-01'"],
        "from_days" => &["739000"],
        "from_unixtime" => &["1700000000"],
        "sec_to_time" => &["3661"],
        "time_to_sec" => &["'01:01:01'"],
        "addtime" | "subtime" => &["'2024-01-01 10:00:00'", "'01:30:00'"],
        "date_add" | "date_sub" => &["'2024-01-15'", "30"],
        "datediff" => &["'2024-02-01'", "'2024-01-01'"],
        "week" => &["'2024-01-15'"],
        "json_object" => &["'a'", "1"],
        "json_array" => &["1", "'two'"],
        "json_extract" | "json_length" | "json_keys" => &["'{\"a\": 1}'", "'$.a'"],
        "json_contains" => &["'[1, 2]'", "'1'"],
        "json_merge" => &["'[1]'", "'[2]'"],
        "json_set" | "json_insert" | "json_replace" => &["'{\"a\": 1}'", "'$.a'", "2"],
        "json_remove" => &["'{\"a\": 1}'", "'$.a'"],
        "json_search" => &["'[\"x\"]'", "'one'", "'x'"],
        "json_quote" | "json_unquote" => &["'abc'"],
        "column_create" => &["'x'", "1"],
        "column_json" => &["COLUMN_CREATE('x', 1)"],
        "column_get" => &["COLUMN_CREATE('x', 1)", "'x'"],
        "updatexml" => &["'<a><c></c></a>'", "'/a/c[1]'", "'<b></b>'"],
        "extractvalue" => &["'<a><b>x</b></a>'", "'/a/b'"],
        "point" => &["1.5", "2.5"],
        "linestring" => &["POINT(0, 0)", "POINT(1, 1)"],
        "st_distance" | "st_equals" | "st_contains" => &["'POINT(1 2)'", "'POINT(3 4)'"],
        "st_geomfromwkb" => &["ST_ASWKB(ST_GEOMFROMTEXT('POINT(1 2)'))"],
        "inet_ntoa" => &["3232235777"],
        "inet6_ntoa" => &["INET6_ATON('::1')"],
        "benchmark" => &["10", "1"],
        "sleep" => &["0"],
        "last_insert_id" => &[],
        "setval" => &["'seq1'", "10"],
        "todecimalstring" => &["1.25", "4"],
        "try_cast" => &["'12'", "'INTEGER'"],
        "map" => &["'k'", "1"],
        "element_at" => &["[10, 20]", "1"],
        "array_slice" => &["[1, 2, 3, 4]", "2", "3"],
        "array_contains" | "array_position" => &["[1, 2, 3]", "2"],
        "array_append" => &["[1, 2]", "3"],
        "array_prepend" => &["0", "[1, 2]"],
        "array_concat" => &["[1]", "[2]"],
        "map_from_entries" => &["[ROW('a', 1), ROW('b', 2)]"],
        "map_keys" | "map_values" | "cardinality" => &["MAP('k', 1)"],
        "map_contains_key" => &["MAP('k', 1)", "'k'"],
        "group_concat" | "string_agg" => &["'v'"],
        "json_objectagg" | "jsonb_object_agg" => &["'k'", "'v'"],
        "strcmp" => &["'a'", "'b'"],
        "coercibility" | "charset" | "collation" | "quote" | "typeof" => &["'abc'"],
        "hex" => &["255"],
        _ => return None,
    })
}

/// Builds an example call for one exposed name.
pub fn example_for(name: &str, def: &FunctionDef) -> String {
    let args: Vec<String> = match override_args(def.name) {
        Some(list) => list.iter().map(|s| s.to_string()).collect(),
        None => {
            let t = templates(def.category);
            let n = def.min_args.max(usize::from(def.max_args != Some(0)));
            let n = match def.max_args {
                Some(m) => n.min(m),
                None => n,
            };
            (0..n).map(|i| t[i % t.len()].to_string()).collect()
        }
    };
    format!("{}({})", name, args.join(", "))
}

/// Synthesises the documentation set for a registry.
pub fn documentation(registry: &FunctionRegistry) -> Vec<DocFunction> {
    let mut out = Vec::new();
    for name in registry.names() {
        let def = registry.resolve(&name).expect("name from registry");
        out.push(DocFunction { name: name.clone(), example: example_for(&name, def) });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_engine::functions;

    fn full_registry() -> FunctionRegistry {
        let mut r = FunctionRegistry::new();
        functions::install_all(&mut r);
        functions::install_common_aliases(&mut r);
        r
    }

    #[test]
    fn documentation_covers_every_name() {
        let r = full_registry();
        let docs = documentation(&r);
        assert_eq!(docs.len(), r.name_count());
    }

    #[test]
    fn examples_parse() {
        let r = full_registry();
        for d in documentation(&r) {
            let sql = format!("SELECT {}", d.example);
            soft_parser::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("{}: {e}", d.example));
        }
    }

    #[test]
    fn examples_execute_without_crash_or_semantic_error() {
        use soft_engine::{Engine, ExecOutcome, SqlError};
        let mut e = Engine::with_default_functions(Default::default());
        let docs = documentation(e.registry());
        let mut runtime_errors = 0usize;
        let total = docs.len();
        for d in docs {
            let sql = format!("SELECT {}", d.example);
            match e.execute(&sql) {
                ExecOutcome::Rows(_) => {}
                ExecOutcome::Crash(c) => panic!("{sql}: crashed: {c}"),
                ExecOutcome::Error(SqlError::Semantic(m)) => {
                    panic!("{sql}: semantic error (bad example): {m}")
                }
                ExecOutcome::Error(_) => runtime_errors += 1,
                ExecOutcome::Ok(_) => {}
            }
        }
        // The synthesised docs should be overwhelmingly well-typed.
        assert!(
            runtime_errors * 10 <= total,
            "{runtime_errors}/{total} examples raised runtime/type errors"
        );
    }
}
