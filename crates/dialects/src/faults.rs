//! The fault corpus: the 132 bugs of the paper's Table 4, transcribed row by
//! row and realised as trigger predicates over the dialects' function
//! registries.
//!
//! Every fault carries the Table 4 row it reproduces (dialect, function
//! type, crash kind, discovering pattern, fixed status) plus a generated
//! **witness**: one concrete SQL statement, built with exactly the credited
//! pattern's template, that fires the fault. The corpus tests assert that
//! (a) per-row counts match Table 4, (b) each witness crashes with its own
//! fault id, and (c) the dialect's seed corpus and synthesised documentation
//! run crash-free (the bugs were *unknown* — vendor examples did not trigger
//! them).

use crate::docs;
use crate::profile::DialectId;
use soft_engine::fault::{
    FaultSite, FaultSpec, LogicQuirkSpec, PatternId, ProvPred, QuirkEffect, Trigger, ValuePred,
};
use soft_engine::registry::FunctionRegistry;
use soft_engine::{CrashKind, Stage};
use soft_types::category::FunctionCategory as C;
use soft_types::value::DataType;

/// One injected fault plus its generated witness statement.
#[derive(Debug, Clone)]
pub struct CorpusFault {
    /// The engine-level fault specification.
    pub spec: FaultSpec,
    /// A SQL statement, built with the credited pattern, that triggers it.
    pub witness: String,
}

/// One row of Table 4.
struct RowSpec {
    category: C,
    /// (crash kind, how many), in row order.
    kinds: &'static [(CrashKind, u8)],
    /// (pattern, how many), in row order.
    patterns: &'static [(PatternId, u8)],
    /// How many of the row's bugs the paper reports fixed.
    fixed: u8,
}

use CrashKind::*;
use PatternId::*;

const fn row(
    category: C,
    kinds: &'static [(CrashKind, u8)],
    patterns: &'static [(PatternId, u8)],
    fixed: u8,
) -> RowSpec {
    RowSpec { category, kinds, patterns, fixed }
}

fn table4_rows(id: DialectId) -> Vec<RowSpec> {
    match id {
        DialectId::Postgres => vec![
            // aggregate (1): HBOF; P2.3; 1 fixed.
            row(C::Aggregate, &[(HeapBufferOverflow, 1)], &[(P2_3, 1)], 1),
        ],
        DialectId::Mysql => vec![
            row(
                C::Aggregate,
                &[(NullPointerDereference, 4), (SegmentationViolation, 1), (GlobalBufferOverflow, 1)],
                &[(P3_3, 4), (P2_1, 1), (P1_3, 1)],
                0,
            ),
            row(C::Date, &[(SegmentationViolation, 1)], &[(P3_3, 1)], 0),
            row(C::Spatial, &[(UseAfterFree, 1)], &[(P3_3, 1)], 0),
            row(C::String, &[(HeapBufferOverflow, 2)], &[(P3_2, 1), (P3_3, 1)], 0),
            row(
                C::System,
                &[(NullPointerDereference, 4), (HeapBufferOverflow, 1)],
                &[(P3_2, 1), (P3_3, 4)],
                1,
            ),
            row(C::Xml, &[(UseAfterFree, 1)], &[(P3_2, 1)], 0),
        ],
        DialectId::Mariadb => vec![
            row(
                C::Aggregate,
                &[(NullPointerDereference, 1), (SegmentationViolation, 2), (StackOverflow, 1)],
                &[(P1_2, 3), (P2_2, 1)],
                0,
            ),
            row(C::Condition, &[(NullPointerDereference, 1)], &[(P2_2, 1)], 0),
            row(
                C::Date,
                &[(NullPointerDereference, 2), (GlobalBufferOverflow, 1)],
                &[(P1_2, 1), (P2_3, 1), (P3_3, 1)],
                0,
            ),
            row(
                C::Json,
                &[
                    (NullPointerDereference, 2),
                    (SegmentationViolation, 1),
                    (AssertionFailure, 1),
                    (GlobalBufferOverflow, 2),
                ],
                &[(P1_4, 2), (P2_3, 1), (P3_1, 2), (P3_3, 1)],
                0,
            ),
            row(C::Sequence, &[(NullPointerDereference, 1)], &[(P3_3, 1)], 0),
            row(
                C::Spatial,
                &[(NullPointerDereference, 3), (SegmentationViolation, 1), (StackOverflow, 1)],
                &[(P3_2, 1), (P3_3, 4)],
                3,
            ),
            row(
                C::String,
                &[(NullPointerDereference, 2), (HeapBufferOverflow, 1), (StackOverflow, 1)],
                &[(P1_2, 2), (P3_1, 1), (P3_3, 1)],
                1,
            ),
        ],
        DialectId::Clickhouse => vec![
            row(C::Aggregate, &[(NullPointerDereference, 1)], &[(P1_2, 1)], 1),
            row(C::Array, &[(NullPointerDereference, 1)], &[(P2_3, 1)], 1),
            row(C::Date, &[(NullPointerDereference, 1)], &[(P1_2, 1)], 1),
            row(
                C::String,
                &[(NullPointerDereference, 1), (SegmentationViolation, 2)],
                &[(P1_2, 1), (P2_3, 1), (P3_1, 1)],
                3,
            ),
        ],
        DialectId::Monetdb => vec![
            row(
                C::Aggregate,
                &[(NullPointerDereference, 6), (SegmentationViolation, 1)],
                &[(P1_2, 1), (P2_1, 1), (P2_2, 2), (P2_3, 2), (P3_3, 1)],
                7,
            ),
            row(
                C::Condition,
                &[(NullPointerDereference, 2), (SegmentationViolation, 1)],
                &[(P2_2, 1), (P3_2, 1), (P3_3, 1)],
                3,
            ),
            row(C::Math, &[(NullPointerDereference, 1)], &[(P2_2, 1)], 1),
            row(
                C::String,
                &[(NullPointerDereference, 5), (HeapBufferOverflow, 1)],
                &[(P1_2, 1), (P1_3, 1), (P1_4, 1), (P2_3, 3)],
                6,
            ),
            row(
                C::System,
                &[(SegmentationViolation, 1), (DivideByZero, 1)],
                &[(P1_2, 1), (P2_3, 1)],
                2,
            ),
        ],
        DialectId::Duckdb => vec![
            row(
                C::Array,
                &[(AssertionFailure, 5), (HeapBufferOverflow, 3), (StackOverflow, 1)],
                &[(P1_2, 7), (P1_4, 1), (P2_2, 1)],
                9,
            ),
            row(C::Date, &[(StackOverflow, 1)], &[(P3_1, 1)], 1),
            row(
                C::Map,
                &[(AssertionFailure, 1), (HeapBufferOverflow, 2)],
                &[(P1_2, 2), (P2_1, 1)],
                3,
            ),
            row(C::Json, &[(AssertionFailure, 1)], &[(P1_2, 1)], 1),
            row(
                C::Math,
                &[(AssertionFailure, 1), (HeapBufferOverflow, 1)],
                &[(P1_2, 1), (P2_1, 1)],
                2,
            ),
            row(
                C::String,
                &[(AssertionFailure, 2), (SegmentationViolation, 2)],
                &[(P1_2, 1), (P1_3, 1), (P3_1, 1), (P3_3, 1)],
                4,
            ),
            row(C::System, &[(AssertionFailure, 1)], &[(P2_1, 1)], 1),
        ],
        DialectId::Virtuoso => vec![
            row(
                C::Aggregate,
                &[(NullPointerDereference, 4), (SegmentationViolation, 1)],
                &[(P1_2, 1), (P3_2, 1), (P3_3, 3)],
                5,
            ),
            row(C::Casting, &[(AssertionFailure, 2)], &[(P1_2, 2)], 2),
            row(
                C::Condition,
                &[(NullPointerDereference, 2), (SegmentationViolation, 1)],
                &[(P3_3, 3)],
                3,
            ),
            row(
                C::Math,
                &[(NullPointerDereference, 3), (SegmentationViolation, 1), (DivideByZero, 1)],
                &[(P1_2, 2), (P2_1, 1), (P2_2, 1), (P2_3, 1)],
                5,
            ),
            row(
                C::Spatial,
                &[(NullPointerDereference, 1), (SegmentationViolation, 1)],
                &[(P1_2, 1), (P2_1, 1)],
                2,
            ),
            row(
                C::String,
                &[
                    (NullPointerDereference, 2),
                    (SegmentationViolation, 6),
                    (StackOverflow, 1),
                    (UseAfterFree, 1),
                ],
                &[(P1_2, 5), (P2_3, 1), (P3_1, 3), (P3_2, 1)],
                10,
            ),
            row(C::Xml, &[(NullPointerDereference, 3)], &[(P1_2, 3)], 3),
            row(
                C::System,
                &[(NullPointerDereference, 8), (SegmentationViolation, 6), (HeapBufferOverflow, 1)],
                &[(P1_2, 11), (P3_1, 3), (P3_3, 1)],
                15,
            ),
        ],
    }
}

/// Row-category → registry categories considered when picking functions.
fn registry_categories(cat: C) -> &'static [C] {
    match cat {
        C::System => &[C::System, C::Control, C::Comparison],
        other => std::slice::from_ref(match other {
            C::String => &C::String,
            C::Aggregate => &C::Aggregate,
            C::Math => &C::Math,
            C::Date => &C::Date,
            C::Json => &C::Json,
            C::Xml => &C::Xml,
            C::Spatial => &C::Spatial,
            C::Condition => &C::Condition,
            C::Casting => &C::Casting,
            C::Sequence => &C::Sequence,
            C::Array => &C::Array,
            C::Map => &C::Map,
            _ => &C::System,
        }),
    }
}

/// P3.3 donor functions, in preference order.
const DONORS: &[&str] = &[
    "inet6_aton",
    "hex",
    "json_array",
    "point",
    "md5",
    "uuid",
    "space",
    "now",
    "from_base64",
    "curdate",
    "soundex",
    "json_object",
];

/// (function, donor) pairs that already occur in docs/seeds and therefore
/// must not be used as P3.3 triggers.
const DONOR_EXCLUSIONS: &[(&str, &str)] = &[
    ("inet6_ntoa", "inet6_aton"),
    ("st_geomfromwkb", "st_aswkb"),
    ("column_json", "column_create"),
    ("column_get", "column_create"),
    ("linestring", "point"),
    ("lower", "hex"),
];

/// Functions whose examples contain NULL arguments (no IsNull triggers).
const NULL_EXAMPLE_FNS: &[&str] = &["ifnull", "nvl", "coalesce", "decode"];

/// Functions that receive function-returned text in docs/seeds (no plain
/// FromAnyFunction-text triggers).
const FN_TEXT_EXCLUSIONS: &[&str] = &["lower", "upper", "length"];

/// Categories whose example arguments are structured text (dates, JSON,
/// XML, WKT, addresses) — excluded from StructuredText triggers.
fn structured_example_category(cat: C) -> bool {
    matches!(cat, C::Date | C::Json | C::Xml | C::Spatial)
}

/// Functions with structured-text examples outside those categories.
const STRUCTURED_EXAMPLE_FNS: &[&str] = &[
    "inet_aton", "inet6_aton", "is_ipv4", "is_ipv6", "timestampdiff", "contains",
];

/// A trigger template: how a pattern's faults are realised.
struct Template {
    trigger: Trigger,
    /// Renders a witness argument (what replaces the function's first
    /// argument), given the original example argument text.
    witness_arg: Box<dyn Fn(&str) -> String>,
    /// Extra eligibility check for the chosen function.
    eligible: Box<dyn Fn(&soft_engine::registry::FunctionDef) -> bool>,
}

fn any_arg(pred: ValuePred) -> Trigger {
    Trigger::Arg { index: None, pred }
}

fn template_for(pattern: PatternId, rotation: usize, donors: &[&'static str]) -> Template {
    match pattern {
        P1_1 | P1_2 => {
            // Boundary literal pool substitutions.
            type Variant = (&'static str, Trigger, fn(&str) -> String);
            let variants: [Variant; 6] = [
                ("star", any_arg(ValuePred::IsStar), |_| "*".into()),
                ("empty", any_arg(ValuePred::IsEmptyString), |_| "''".into()),
                (
                    "long-digits",
                    any_arg(ValuePred::AllOf(vec![
                        ValuePred::AnyOf(vec![
                            ValuePred::TypeIs(DataType::Decimal),
                            ValuePred::TypeIs(DataType::Integer),
                        ]),
                        ValuePred::DigitsAtLeast(40),
                    ])),
                    |_| "9".repeat(45),
                ),
                ("null", any_arg(ValuePred::IsNull), |_| "NULL".into()),
                (
                    "neg-long",
                    any_arg(ValuePred::AllOf(vec![
                        ValuePred::IsNegative,
                        ValuePred::DigitsAtLeast(10),
                    ])),
                    |_| format!("-{}", "9".repeat(20)),
                ),
                ("huge-int", any_arg(ValuePred::IntAbsAtLeast(10_000_000_000)), |_| {
                    "99999999999".into()
                }),
            ];
            let (name, trigger, w) = &variants[rotation % variants.len()];
            let needs_no_null = *name == "null";
            let w = *w;
            // P1.2 is about boundary *literals*: a NULL or empty string that
            // arrives as another function's return is P3.x territory.
            let trigger = Trigger::And(vec![
                trigger.clone(),
                Trigger::Not(Box::new(Trigger::ArgProv {
                    index: None,
                    pred: ProvPred::FromAnyFunction,
                })),
            ]);
            Template {
                trigger,
                witness_arg: Box::new(w),
                eligible: Box::new(move |def| {
                    !(needs_no_null && NULL_EXAMPLE_FNS.contains(&def.name))
                }),
            }
        }
        P1_3 => Template {
            // A digit run inserted into a literal (not a nested-function
            // result — that is P3.1's territory).
            trigger: Trigger::And(vec![
                any_arg(ValuePred::DigitsAtLeast(60)),
                Trigger::Not(Box::new(Trigger::ArgProv {
                    index: None,
                    pred: ProvPred::FromAnyFunction,
                })),
            ]),
            witness_arg: Box::new(|orig| {
                if orig.starts_with('\'') {
                    format!("'x{}x'", "9".repeat(64))
                } else {
                    format!("1.{}", "9".repeat(64))
                }
            }),
            eligible: Box::new(|_| true),
        },
        P1_4 => Template {
            // A character repeated in place (literal provenance only).
            trigger: Trigger::And(vec![
                any_arg(ValuePred::RepeatRunAtLeast(10)),
                Trigger::Not(Box::new(Trigger::ArgProv {
                    index: None,
                    pred: ProvPred::FromAnyFunction,
                })),
            ]),
            witness_arg: Box::new(|orig| {
                if orig.starts_with('[') {
                    format!("[{}]", vec!["7"; 24].join(", "))
                } else {
                    format!("'{}'", "{".repeat(24))
                }
            }),
            // P1.4 mutates string or array literals in place, so the
            // example's first argument must be one.
            eligible: Box::new(|def| {
                let example = docs::example_for(def.name, def);
                let inner = &example[example.find('(').map(|i| i + 1).unwrap_or(0)
                    ..example.len().saturating_sub(1)];
                let first = split_args(inner).first().copied().unwrap_or("");
                first.starts_with('\'') || first.starts_with('[')
            }),
        },
        P2_1 => {
            let types = [DataType::Decimal, DataType::Integer, DataType::Float, DataType::Text];
            let ty = types[rotation % types.len()];
            Template {
                trigger: Trigger::And(vec![
                    Trigger::ArgProv { index: None, pred: ProvPred::ViaExplicitCast },
                    any_arg(ValuePred::TypeIs(ty)),
                ]),
                witness_arg: Box::new(move |orig| format!("CAST({orig} AS {})", ty.sql_name())),
                // The witness's explicit cast must succeed even under strict
                // casting, so require a plain literal first example argument
                // (and a numeric one for numeric targets).
                eligible: Box::new(move |def| {
                    let example = docs::example_for(def.name, def);
                    let inner = &example[example.find('(').map(|i| i + 1).unwrap_or(0)
                        ..example.len().saturating_sub(1)];
                    let first = split_args(inner).first().copied().unwrap_or("");
                    let b = first.as_bytes();
                    let is_number = !b.is_empty()
                        && (b[0].is_ascii_digit() || b[0] == b'-' || b[0] == b'.');
                    let is_string = b.first() == Some(&b'\'');
                    if ty.is_numeric() {
                        is_number
                    } else {
                        is_number || is_string
                    }
                }),
            }
        }
        P2_2 => Template {
            trigger: Trigger::ArgProv { index: None, pred: ProvPred::ViaImplicitCast },
            // `1e200` exceeds the decimal digit cap and lands as a float, so
            // the UNION target is FLOAT and the (integer/decimal) original
            // value is implicitly coerced — a conversion that even strict
            // dialects permit.
            witness_arg: Box::new(|orig| {
                format!("(SELECT {orig} UNION ALL SELECT 1e200 LIMIT 1)")
            }),
            // The coercion only touches the original value when it is a
            // non-float numeric, so restrict to numeric-example functions.
            eligible: Box::new(|def| {
                matches!(
                    def.category,
                    C::Math | C::Aggregate | C::Condition | C::Array | C::Control
                )
            }),
        },
        P2_3 => {
            let variants = rotation % 3;
            match variants {
                0 => Template {
                    trigger: Trigger::And(vec![
                        any_arg(ValuePred::StructuredText),
                        Trigger::Not(Box::new(Trigger::ArgProv {
                            index: None,
                            pred: ProvPred::FromAnyFunction,
                        })),
                    ]),
                    witness_arg: Box::new(|_| "'POINT(1 2)'".into()),
                    eligible: Box::new(|def| {
                        !structured_example_category(def.category)
                            && !STRUCTURED_EXAMPLE_FNS.contains(&def.name)
                    }),
                },
                1 => Template {
                    trigger: Trigger::And(vec![
                        any_arg(ValuePred::TypeIs(DataType::Binary)),
                        Trigger::Not(Box::new(Trigger::ArgProv {
                            index: None,
                            pred: ProvPred::FromAnyFunction,
                        })),
                    ]),
                    witness_arg: Box::new(|_| "x'01020304'".into()),
                    eligible: Box::new(|def| {
                        !matches!(def.name, "inet6_ntoa" | "st_geomfromwkb" | "column_json"
                            | "column_get" | "unhex" | "from_base64" | "hex")
                    }),
                },
                _ => Template {
                    trigger: any_arg(ValuePred::TypeIs(DataType::Interval)),
                    witness_arg: Box::new(|_| "INTERVAL 10 DAY".into()),
                    eligible: Box::new(|def| !matches!(def.name, "date_add" | "date_sub")),
                },
            }
        }
        P3_1 => Template {
            trigger: Trigger::And(vec![
                Trigger::ArgProv { index: None, pred: ProvPred::FromFunction("repeat".into()) },
                any_arg(ValuePred::LenAtLeast(256)),
            ]),
            witness_arg: Box::new(|_| "REPEAT('[1,', 200)".into()),
            eligible: Box::new(|_| true),
        },
        P3_2 => Template {
            trigger: Trigger::And(vec![
                Trigger::ArgProv { index: None, pred: ProvPred::FromAnyFunction },
                Trigger::Not(Box::new(Trigger::ArgProv {
                    index: None,
                    pred: ProvPred::FromFunction("repeat".into()),
                })),
                any_arg(ValuePred::TypeIs(DataType::Text)),
            ]),
            // Keep the wrapper well-typed even under strict casting: only
            // wrap the original argument when it is already a string.
            witness_arg: Box::new(|orig| {
                if orig.starts_with('\'') {
                    format!("TRIM({orig})")
                } else {
                    "TRIM('ab')".to_string()
                }
            }),
            eligible: Box::new(|def| !FN_TEXT_EXCLUSIONS.contains(&def.name)),
        },
        P3_3 => {
            let donor = donors[rotation % donors.len()];
            Template {
                trigger: Trigger::ArgProv {
                    index: None,
                    pred: ProvPred::FromFunction(donor.into()),
                },
                witness_arg: Box::new(move |_| donor_call(donor)),
                eligible: Box::new(move |def| {
                    !DONOR_EXCLUSIONS.contains(&(def.name, donor)) && def.name != donor
                }),
            }
        }
    }
}

/// A canonical call for a P3.3 donor.
fn donor_call(donor: &str) -> String {
    match donor {
        "inet6_aton" => "INET6_ATON('10.0.0.1')".into(),
        "hex" => "HEX(255)".into(),
        "json_array" => "JSON_ARRAY(1, 'two')".into(),
        "point" => "POINT(1.5, 2.5)".into(),
        "md5" => "MD5('abc')".into(),
        "uuid" => "UUID()".into(),
        "space" => "SPACE(3)".into(),
        "now" => "NOW()".into(),
        "from_base64" => "FROM_BASE64('YWJj')".into(),
        "curdate" => "CURDATE()".into(),
        "soundex" => "SOUNDEX('Robert')".into(),
        "json_object" => "JSON_OBJECT('a', 1)".into(),
        other => format!("{}()", other.to_uppercase()),
    }
}


/// Hand-pinned exemplar faults: the paper's case-study listings name the
/// exact function and PoC, so the corpus places those bugs on those
/// functions instead of letting the generic builder choose. Each entry maps
/// (dialect, row category, crash kind, pattern) to (id suffix, function,
/// trigger, witness).
#[allow(clippy::type_complexity)]
fn pinned_exemplars(
    id: DialectId,
) -> Vec<((C, CrashKind, PatternId), (&'static str, &'static str, Trigger, &'static str))> {
    let not_from_fn = || {
        Trigger::Not(Box::new(Trigger::ArgProv {
            index: None,
            pred: ProvPred::FromAnyFunction,
        }))
    };
    match id {
        DialectId::Clickhouse => vec![(
            (C::String, NullPointerDereference, P1_2),
            (
                "listing1",
                "todecimalstring",
                Trigger::And(vec![any_arg(ValuePred::IsStar), not_from_fn()]),
                "SELECT toDecimalString('110'::Decimal256(45), *)",
            ),
        )],
        DialectId::Mysql => vec![(
            (C::Aggregate, GlobalBufferOverflow, P1_3),
            (
                "listing6",
                "avg",
                Trigger::And(vec![any_arg(ValuePred::DigitsAtLeast(60)), not_from_fn()]),
                "SELECT AVG(1.2999999999999999999999999999999999999999999999999999999999999999)",
            ),
        )],
        DialectId::Virtuoso => vec![(
            (C::String, SegmentationViolation, P1_2),
            (
                "listing7",
                "contains",
                Trigger::And(vec![any_arg(ValuePred::IsStar), not_from_fn()]),
                "SELECT CONTAINS('x', 'x', *)",
            ),
        )],
        DialectId::Postgres => vec![(
            (C::Aggregate, HeapBufferOverflow, P2_3),
            (
                "listing8",
                "jsonb_object_agg",
                Trigger::And(vec![
                    Trigger::Arg { index: Some(0), pred: ValuePred::TypeIs(DataType::Text) },
                    Trigger::ArgProv { index: Some(0), pred: ProvPred::IsLiteral },
                    Trigger::Arg {
                        index: Some(1),
                        pred: ValuePred::AllOf(vec![
                            ValuePred::TypeIs(DataType::Text),
                            ValuePred::LenAtLeast(3),
                        ]),
                    },
                ]),
                "SELECT JSONB_OBJECT_AGG(DISTINCT 'a', 'abc')",
            ),
        )],
        DialectId::Mariadb => vec![
            (
                (C::Json, GlobalBufferOverflow, P3_1),
                (
                    "listing10",
                    "json_length",
                    Trigger::And(vec![
                        Trigger::ArgProv {
                            index: None,
                            pred: ProvPred::FromFunction("repeat".into()),
                        },
                        any_arg(ValuePred::LenAtLeast(256)),
                    ]),
                    "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')",
                ),
            ),
            (
                (C::Spatial, SegmentationViolation, P3_3),
                (
                    "listing11",
                    "boundary",
                    Trigger::ArgProv {
                        index: None,
                        pred: ProvPred::FromFunction("inet6_aton".into()),
                    },
                    "SELECT ST_ASTEXT(BOUNDARY(INET6_ATON('255.255.255.255')))",
                ),
            ),
        ],
        _ => vec![],
    }
}

/// Builds the Table-4 fault corpus for a dialect against its registry.
pub fn build_corpus(id: DialectId, registry: &FunctionRegistry) -> Vec<CorpusFault> {
    let mut out = Vec::new();
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut rotation_by_pattern: std::collections::HashMap<PatternId, usize> =
        std::collections::HashMap::new();
    // Donor functions must exist in this dialect's catalog.
    let donors: Vec<&'static str> = DONORS
        .iter()
        .copied()
        .filter(|d| registry.resolve(d).is_some())
        .collect();
    assert!(!donors.is_empty(), "{id:?}: no P3.3 donor functions available");
    let mut pins = pinned_exemplars(id);
    for (row_idx, row) in table4_rows(id).into_iter().enumerate() {
        // Expand the kind and pattern multiplicity lists.
        let kinds: Vec<CrashKind> = row
            .kinds
            .iter()
            .flat_map(|(k, n)| std::iter::repeat_n(*k, *n as usize))
            .collect();
        let patterns: Vec<PatternId> = row
            .patterns
            .iter()
            .flat_map(|(p, n)| std::iter::repeat_n(*p, *n as usize))
            .collect();
        assert_eq!(
            kinds.len(),
            patterns.len(),
            "{id:?} row {row_idx} ({}) kind/pattern multiplicity mismatch",
            row.category
        );
        // Candidate functions of this row's category, name-sorted for
        // determinism.
        let cats = registry_categories(row.category);
        let mut candidates: Vec<&soft_engine::registry::FunctionDef> = registry
            .defs()
            .iter()
            .filter(|d| cats.contains(&d.category))
            .filter(|d| registry.resolve(d.name).is_some())
            // Need at least one example argument to mutate.
            .filter(|d| !docs::example_for(d.name, d).ends_with("()"))
            .collect();
        candidates.sort_by_key(|d| d.name);
        assert!(
            !candidates.is_empty(),
            "{id:?}: no registered functions for category {}",
            row.category
        );
        for (i, (kind, pattern)) in kinds.into_iter().zip(patterns).enumerate() {
            // A pinned exemplar consumes this (category, kind, pattern) slot.
            if let Some(pos) = pins
                .iter()
                .position(|(key, _)| *key == (row.category, kind, pattern))
            {
                let (_, (suffix, function, trigger, witness)) = pins.remove(pos);
                assert!(
                    registry.resolve(function).is_some(),
                    "{id:?}: pinned function {function} missing from catalog"
                );
                out.push(CorpusFault {
                    spec: FaultSpec {
                        id: format!(
                            "{}-{}-{}-{}-{}",
                            id.key(),
                            row.category.label(),
                            kind.abbrev().to_lowercase(),
                            suffix,
                            out.len()
                        ),
                        site: FaultSite::Function(function.to_string()),
                        kind,
                        stage: Stage::Execution,
                        trigger,
                        category: row.category,
                        pattern,
                        fixed: i < row.fixed as usize,
                        description: format!(
                            "{} in {function} (paper case study {suffix})",
                            kind.abbrev()
                        ),
                    },
                    witness: witness.to_string(),
                });
                continue;
            }
            // Advance the global per-pattern rotation for diversity.
            let rot = rotation_by_pattern.entry(pattern).or_insert(0);
            let mut chosen = None;
            // Try rotations until an eligible (function, template) pair is
            // found that is not yet used.
            'search: for attempt in 0..(candidates.len() * 8).max(8) {
                let template =
                    template_for(pattern, *rot + attempt / candidates.len(), &donors);
                for k in 0..candidates.len() {
                    let def = candidates[(i + k + attempt) % candidates.len()];
                    let key = format!("{}:{}:{}", def.name, pattern.label(), *rot + attempt);
                    if used.contains(&key) || !(template.eligible)(def) {
                        continue;
                    }
                    used.insert(key);
                    chosen = Some((def, template));
                    break 'search;
                }
            }
            let (def, template) = chosen.unwrap_or_else(|| {
                panic!(
                    "{id:?}: could not place a {} fault in category {}",
                    pattern.label(),
                    row.category
                )
            });
            *rot += 1;
            let fault_id = format!(
                "{}-{}-{}-{}-{}",
                id.key(),
                row.category.label(),
                kind.abbrev().to_lowercase(),
                pattern.label().replace('.', "_").to_lowercase(),
                out.len()
            );
            // Stage distribution: the credited pattern's group maps to the
            // stage distribution of Finding 1 (most crashes in execution).
            let stage = match pattern {
                P2_2 => Stage::Optimization,
                _ => Stage::Execution,
            };
            let witness = witness_sql(registry, def, &template);
            out.push(CorpusFault {
                spec: FaultSpec {
                    id: fault_id,
                    site: FaultSite::Function(def.name.to_string()),
                    kind,
                    stage,
                    trigger: template.trigger.clone(),
                    category: row.category,
                    pattern,
                    fixed: i < row.fixed as usize,
                    description: format!(
                        "{} in {} when handling a {} boundary argument",
                        kind.abbrev(),
                        def.name,
                        pattern.label()
                    ),
                },
                witness,
            });
        }
    }
    out
}

/// The wrong-result quirk corpus for a dialect: injected logic bugs that
/// silently corrupt a function's return value instead of crashing. The
/// triggers are deliberately ultra-narrow (one literal argument value) so
/// the crash-path corpus, seeds, and coverage surfaces are untouched — the
/// quirks exist for the campaign's logic-bug oracles to catch, and for the
/// oracle goldens to pin.
pub fn logic_quirks(id: DialectId) -> Vec<LogicQuirkSpec> {
    match id {
        DialectId::Clickhouse => vec![LogicQuirkSpec {
            id: "clickhouse-logic-tostring-1".into(),
            function: "tostring".into(),
            trigger: Trigger::And(vec![
                Trigger::ArgCount(1),
                Trigger::Arg { index: Some(0), pred: ValuePred::IntEquals(42) },
                Trigger::ArgProv { index: Some(0), pred: ProvPred::IsLiteral },
            ]),
            effect: QuirkEffect::TextSuffix(".0".into()),
            description: "toString renders an integer literal with a spurious \
                          decimal suffix"
                .into(),
        }],
        _ => vec![],
    }
}

/// Builds a witness statement: the function's doc example with its first
/// argument replaced by the template's boundary construction.
fn witness_sql(
    registry: &FunctionRegistry,
    def: &soft_engine::registry::FunctionDef,
    template: &Template,
) -> String {
    let example = docs::example_for(def.name, def);
    // Split example into name + args text; rebuild with arg0 replaced.
    let open = example.find('(').expect("example has parens");
    let name = &example[..open];
    let inner = &example[open + 1..example.len() - 1];
    let args: Vec<&str> = split_args(inner);
    let first = args.first().copied().unwrap_or("1");
    let new_first = (template.witness_arg)(first);
    let mut new_args = vec![new_first];
    new_args.extend(args.iter().skip(1).map(|s| s.to_string()));
    let _ = registry;
    format!("SELECT {}({})", name, new_args.join(", "))
}

/// Splits a comma-separated argument list, respecting quotes, parens and
/// brackets.
fn split_args(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut start = 0usize;
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' => in_str = !in_str,
            b'(' | b'[' if !in_str => depth += 1,
            b')' | b']' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DialectProfile;
    use soft_engine::ExecOutcome;

    #[test]
    fn per_dialect_counts_match_table4() {
        let expect = [
            (DialectId::Postgres, 1),
            (DialectId::Mysql, 16),
            (DialectId::Mariadb, 24),
            (DialectId::Clickhouse, 6),
            (DialectId::Monetdb, 19),
            (DialectId::Duckdb, 21),
            (DialectId::Virtuoso, 45),
        ];
        let mut total = 0;
        for (id, n) in expect {
            let p = DialectProfile::build(id);
            assert_eq!(p.faults.len(), n, "{id:?}");
            total += p.faults.len();
        }
        assert_eq!(total, 132);
    }

    #[test]
    fn pattern_group_totals_match_paper() {
        // §7.3: 56 bugs from literal patterns, 28 from casting, 48 from
        // nested functions.
        let mut by_group = [0usize; 4];
        for id in DialectId::ALL {
            for f in &DialectProfile::build(id).faults {
                by_group[f.spec.pattern.group() as usize] += 1;
            }
        }
        assert_eq!(by_group[1], 56, "P1.x");
        assert_eq!(by_group[2], 28, "P2.x");
        assert_eq!(by_group[3], 48, "P3.x");
    }

    #[test]
    fn crash_kind_totals_match_table4_rows() {
        // Row-level transcription gives 61/29/13/4/3/6/2/14 (the paper's
        // prose says 12 HBOF and 7 SO — a ±1 discrepancy inside Table 4
        // itself; we follow the rows). See EXPERIMENTS.md.
        let mut counts = std::collections::HashMap::new();
        for id in DialectId::ALL {
            for f in &DialectProfile::build(id).faults {
                *counts.entry(f.spec.kind).or_insert(0usize) += 1;
            }
        }
        assert_eq!(counts[&CrashKind::NullPointerDereference], 61);
        assert_eq!(counts[&CrashKind::SegmentationViolation], 29);
        assert_eq!(counts[&CrashKind::HeapBufferOverflow], 13);
        assert_eq!(counts[&CrashKind::GlobalBufferOverflow], 4);
        assert_eq!(counts[&CrashKind::UseAfterFree], 3);
        assert_eq!(counts[&CrashKind::StackOverflow], 6);
        assert_eq!(counts[&CrashKind::DivideByZero], 2);
        assert_eq!(counts[&CrashKind::AssertionFailure], 14);
    }

    #[test]
    fn fixed_count_matches_paper() {
        let fixed: usize = DialectId::ALL
            .iter()
            .flat_map(|id| DialectProfile::build(*id).faults)
            .filter(|f| f.spec.fixed)
            .count();
        assert_eq!(fixed, 97);
    }

    #[test]
    fn every_witness_fires_its_own_fault() {
        for id in DialectId::ALL {
            let p = DialectProfile::build(id);
            for fault in &p.faults {
                let mut engine = p.engine();
                match engine.execute(&fault.witness) {
                    ExecOutcome::Crash(c) => {
                        assert_eq!(
                            c.fault_id, fault.spec.id,
                            "{id:?}: witness {} fired the wrong fault",
                            fault.witness
                        );
                    }
                    other => panic!(
                        "{id:?}: witness `{}` for {} did not crash: {other:?}",
                        fault.witness, fault.spec.id
                    ),
                }
            }
        }
    }

    #[test]
    fn seeds_and_docs_run_crash_free_on_faulty_engines() {
        for id in DialectId::ALL {
            let p = DialectProfile::build(id);
            let mut engine = p.engine();
            for sql in &p.seed_corpus {
                let out = engine.execute(sql);
                assert!(!out.is_crash(), "{id:?}: seed `{sql}` crashed: {out:?}");
            }
            for d in &p.documentation {
                let out = engine.execute(&format!("SELECT {}", d.example));
                assert!(
                    !out.is_crash(),
                    "{id:?}: doc example `{}` crashed: {out:?}",
                    d.example
                );
            }
        }
    }

    #[test]
    fn fault_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for id in DialectId::ALL {
            for f in DialectProfile::build(id).faults {
                assert!(seen.insert(f.spec.id.clone()), "duplicate id {}", f.spec.id);
            }
        }
    }

    #[test]
    fn split_args_respects_nesting() {
        assert_eq!(split_args("1, 'a,b', f(2, 3), [4, 5]"), vec!["1", "'a,b'", "f(2, 3)", "[4, 5]"]);
        assert_eq!(split_args(""), Vec::<&str>::new());
    }
}
