//! The paper's case-study listings (Listings 1, 3–11), wired to the
//! reproduction.
//!
//! Two kinds of cases:
//!
//! * **Studied bugs** (Listings 3–5): historical PoCs from the bug study.
//!   They were fixed upstream, so the reproduction demonstrates the
//!   *guarded* behaviour: the reference engine handles them with an error or
//!   a correct result, never a crash.
//! * **SOFT-found bugs** (Listings 1, 6–11): these live in the Table-4 fault
//!   corpus; each case resolves to a corpus fault of the matching
//!   (dialect, crash kind, pattern) and exposes its executable witness.

use crate::profile::{DialectId, DialectProfile};
use soft_engine::{CrashKind, PatternId};

/// Which listing a case reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// Historical studied bug; PoC must run crash-free on the reference
    /// engine.
    Studied,
    /// SOFT-found bug; maps to a corpus fault.
    Found {
        /// Dialect the bug was found in.
        dialect: DialectId,
        /// Crash classification.
        kind: CrashKind,
        /// Credited pattern.
        pattern: PatternId,
    },
}

/// One case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Paper reference, e.g. `Listing 1`.
    pub listing: &'static str,
    /// Bug identifier from the paper (CVE / MDEV / description).
    pub reference: &'static str,
    /// The PoC SQL as printed in the paper.
    pub paper_poc: &'static str,
    /// Case classification.
    pub kind: CaseKind,
    /// Short explanation.
    pub summary: &'static str,
}

/// All case studies from the paper.
pub fn all_cases() -> Vec<CaseStudy> {
    use CaseKind::*;
    vec![
        CaseStudy {
            listing: "Listing 1",
            reference: "ClickHouse toDecimalString NPD",
            paper_poc: "SELECT toDecimalString('110'::Decimal256(45), *)",
            kind: Found {
                dialect: DialectId::Clickhouse,
                kind: CrashKind::NullPointerDereference,
                pattern: PatternId::P1_2,
            },
            summary: "A '*' precision argument reaches an unchecked pointer path.",
        },
        CaseStudy {
            listing: "Listing 3a",
            reference: "PostgreSQL CVE-2016-0773",
            paper_poc: "SELECT REGEXP_LIKE('x', 'a{1000}')",
            kind: Studied,
            summary: "Regex repetition bounds must be capped to avoid int32 overflow loops.",
        },
        CaseStudy {
            listing: "Listing 3b",
            reference: "MariaDB MDEV-23415",
            paper_poc: "SELECT FORMAT('0', 50, 'de_DE')",
            kind: Studied,
            summary: "FORMAT with 50 digits must not overflow the scientific-notation buffer.",
        },
        CaseStudy {
            listing: "Listing 4a",
            reference: "MariaDB MDEV-8407",
            paper_poc: "SELECT COLUMN_JSON(COLUMN_CREATE('x', 123456789012345678901234567890123456789012346789))",
            kind: Studied,
            summary: "decimal2string must size its buffer for >40-digit decimals.",
        },
        CaseStudy {
            listing: "Listing 4b",
            reference: "MariaDB MDEV-11030",
            paper_poc: "SELECT * FROM (SELECT IFNULL(CONVERT(NULL, UNSIGNED), NULL)) sq",
            kind: Studied,
            summary: "NULL cast to integer must keep a correct digit count.",
        },
        CaseStudy {
            listing: "Listing 5a",
            reference: "PostgreSQL CVE-2015-5289",
            paper_poc: "SELECT REPEAT('[', 1000)::json",
            kind: Studied,
            summary: "JSON parsing needs a recursion-depth guard.",
        },
        CaseStudy {
            listing: "Listing 5b",
            reference: "MariaDB MDEV-14596",
            paper_poc: "SELECT INTERVAL(ROW(1,1), ROW(1,2))",
            kind: Studied,
            summary: "INTERVAL must validate that its arguments are comparable scalars.",
        },
        CaseStudy {
            listing: "Listing 6 (Case 1)",
            reference: "MySQL AVG global buffer overflow",
            paper_poc: "SELECT AVG(1.2999999999999999999999999999999999999999999999999999999999999999)",
            kind: Found {
                dialect: DialectId::Mysql,
                kind: CrashKind::GlobalBufferOverflow,
                pattern: PatternId::P1_3,
            },
            summary: "A 64-digit decimal literal overflows AVG's fixed-size digit buffer.",
        },
        CaseStudy {
            listing: "Listing 7 (Case 2)",
            reference: "Virtuoso CONTAINS segmentation violation",
            paper_poc: "SELECT CONTAINS('x', 'x', *)",
            kind: Found {
                dialect: DialectId::Virtuoso,
                kind: CrashKind::SegmentationViolation,
                pattern: PatternId::P1_2,
            },
            summary: "An unchecked '*' option argument causes illegal memory access.",
        },
        CaseStudy {
            listing: "Listing 8 (Case 3)",
            reference: "PostgreSQL CVE-2023-5868 (JSONB_OBJECT_AGG)",
            paper_poc: "SELECT JSONB_OBJECT_AGG(DISTINCT 'a', 'abc')",
            kind: Found {
                dialect: DialectId::Postgres,
                kind: CrashKind::HeapBufferOverflow,
                pattern: PatternId::P2_3,
            },
            summary: "Unknown-typed literals misread as NUL-terminated strings.",
        },
        CaseStudy {
            listing: "Listing 9 (Case 4)",
            reference: "DuckDB stack overflow via UNION coercion",
            paper_poc: "SELECT REPEAT('[{\"a\":', 100000) UNION (SELECT [ ])",
            kind: Found {
                dialect: DialectId::Duckdb,
                kind: CrashKind::StackOverflow,
                pattern: PatternId::P2_2,
            },
            summary: "Deeply-repeated structured text drives recursive coercion too deep.",
        },
        CaseStudy {
            listing: "Listing 10 (Case 5)",
            reference: "MariaDB JSON_LENGTH global buffer overflow",
            paper_poc: "SELECT JSON_LENGTH(REPEAT('[1,', 100), '$[2][1]')",
            kind: Found {
                dialect: DialectId::Mariadb,
                kind: CrashKind::GlobalBufferOverflow,
                pattern: PatternId::P3_1,
            },
            summary: "REPEAT-built nested arrays overflow the path-evaluation buffer.",
        },
        CaseStudy {
            listing: "Listing 11 (Case 6)",
            reference: "MariaDB ST_ASTEXT/BOUNDARY/INET6_ATON segmentation violation",
            paper_poc: "SELECT ST_ASTEXT(BOUNDARY(INET6_ATON('255.255.255.255')))",
            kind: Found {
                dialect: DialectId::Mariadb,
                kind: CrashKind::SegmentationViolation,
                pattern: PatternId::P3_3,
            },
            summary: "An address blob flows into geometry code without type validation.",
        },
    ]
}

/// Resolves a found-case to a corpus fault of the same (dialect, kind,
/// pattern); returns its fault id and witness.
pub fn resolve_found_case(case: &CaseStudy) -> Option<(String, String)> {
    let CaseKind::Found { dialect, kind, pattern } = case.kind else {
        return None;
    };
    let profile = DialectProfile::build(dialect);
    let matches = |f: &&crate::faults::CorpusFault| {
        f.spec.kind == kind && f.spec.pattern == pattern
    };
    profile
        .faults
        .iter()
        .filter(matches)
        .find(|f| f.spec.id.contains("listing"))
        .or_else(|| profile.faults.iter().find(matches))
        .map(|f| (f.spec.id.clone(), f.witness.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_engine::{Engine, ExecOutcome};

    #[test]
    fn twelve_cases_cover_all_listings() {
        let cases = all_cases();
        assert_eq!(cases.len(), 13);
        let studied = cases.iter().filter(|c| c.kind == CaseKind::Studied).count();
        assert_eq!(studied, 6, "Listings 3-5 contribute six studied PoCs");
    }

    #[test]
    fn studied_pocs_run_guarded_on_reference_engine() {
        let mut e = Engine::with_default_functions(Default::default());
        for case in all_cases() {
            if case.kind == CaseKind::Studied {
                let out = e.execute(case.paper_poc);
                assert!(
                    !out.is_crash(),
                    "{}: guarded engine crashed on {}",
                    case.listing,
                    case.paper_poc
                );
            }
        }
    }

    #[test]
    fn found_cases_resolve_to_crashing_witnesses() {
        for case in all_cases() {
            let CaseKind::Found { dialect, kind, .. } = case.kind else { continue };
            let (fault_id, witness) = resolve_found_case(&case)
                .unwrap_or_else(|| panic!("{}: no corpus fault matches", case.listing));
            let profile = DialectProfile::build(dialect);
            let mut engine = profile.engine();
            match engine.execute(&witness) {
                ExecOutcome::Crash(c) => {
                    assert_eq!(c.fault_id, fault_id, "{}", case.listing);
                    assert_eq!(c.kind, kind, "{}", case.listing);
                }
                other => panic!("{}: witness did not crash: {other:?}", case.listing),
            }
        }
    }

    #[test]
    fn paper_pocs_parse() {
        for case in all_cases() {
            soft_parser::parse_statement(case.paper_poc)
                .unwrap_or_else(|e| panic!("{}: {e}", case.listing));
        }
    }
}
