//! Seven simulated DBMS dialect profiles for the SOFT reproduction.
//!
//! Each profile packages a function catalog (with dialect-flavoured alias
//! names), an engine configuration, synthesised documentation, a seed test
//! suite, and — the heart of the reproduction — the 132-fault corpus
//! transcribed row by row from the paper's Table 4, each fault with a
//! generated witness statement.
//!
//! # Examples
//!
//! ```
//! use soft_dialects::{DialectId, DialectProfile};
//!
//! let profile = DialectProfile::build(DialectId::Mariadb);
//! assert_eq!(profile.faults.len(), 24); // MariaDB's Table 4 total
//! let mut engine = profile.engine();
//! let out = engine.execute(&profile.faults[0].witness);
//! assert!(out.is_crash());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cases;
pub mod docs;
pub mod faults;
pub mod profile;
pub mod seeds;

pub use cases::{all_cases, CaseKind, CaseStudy};
pub use docs::DocFunction;
pub use faults::CorpusFault;
pub use profile::{DialectId, DialectProfile};
