//! Per-dialect seed query corpora — the stand-in for each DBMS's regression
//! test suite, SOFT's second collection source (§7.1).
//!
//! Each corpus is a small script: table creation, data insertion, and
//! function-bearing SELECTs in the styles the paper's Finding 4 describes
//! (47.5 % of PoCs need tables + data, 41.5 % are table-free, 11 % need
//! empty tables).

use crate::profile::DialectId;

/// Shared schema/data preparation used by every dialect corpus.
pub const SHARED_PREP: &[&str] = &[
    "CREATE TABLE t1 (a INTEGER, b TEXT, c DOUBLE)",
    "INSERT INTO t1 VALUES (1, 'alpha', 1.5), (2, 'beta', 2.5), (3, 'gamma', -0.5)",
    "CREATE TABLE t2 (k TEXT, v INTEGER)",
    "INSERT INTO t2 VALUES ('x', 10), ('x', 20), ('y', 30)",
    "CREATE TABLE t3 (d TEXT, j TEXT)",
    "INSERT INTO t3 VALUES ('2024-01-15', '{\"n\": 1}'), ('2024-02-29', '[1, 2, 3]')",
    "CREATE TABLE empty1 (a INTEGER NOT NULL, b VARCHAR(32))",
];

/// Function-bearing queries every dialect's suite includes.
pub const SHARED_QUERIES: &[&str] = &[
    "SELECT UPPER(b), LENGTH(b) FROM t1",
    "SELECT CONCAT(b, '-', b) FROM t1 WHERE a > 1",
    "SELECT SUBSTR(b, 1, 3) FROM t1 ORDER BY a",
    "SELECT REPLACE(b, 'a', 'o') FROM t1",
    "SELECT TRIM('  pad  ')",
    "SELECT REPEAT(b, 2) FROM t1 LIMIT 2",
    "SELECT COUNT(*), SUM(a), AVG(c) FROM t1",
    "SELECT k, COUNT(v), MAX(v) FROM t2 GROUP BY k HAVING COUNT(v) > 1",
    "SELECT MIN(a), MAX(b) FROM t1",
    "SELECT ABS(c), ROUND(c, 1), FLOOR(c) FROM t1",
    "SELECT MOD(a, 2), POW(a, 2) FROM t1",
    "SELECT GREATEST(1, 2, 3), LEAST(4, 5, 6)",
    "SELECT COALESCE(NULL, b) FROM t1",
    "SELECT IFNULL(NULL, 42)",
    "SELECT NULLIF(a, 2) FROM t1",
    "SELECT YEAR(d), MONTH(d) FROM t3",
    "SELECT DATEDIFF('2024-03-01', d) FROM t3",
    "SELECT JSON_VALID(j), JSON_LENGTH(j) FROM t3",
    "SELECT CAST(a AS TEXT), CAST(c AS INTEGER) FROM t1",
    "SELECT HEX(a), LOWER(HEX(b)) FROM t1",
    "SELECT a FROM t1 WHERE b LIKE '%a%'",
    "SELECT COUNT(a) FROM empty1",
    "SELECT DISTINCT k FROM t2",
    "SELECT v * 2 FROM t2 UNION SELECT a FROM t1",
    "SELECT (SELECT MAX(v) FROM t2)",
    "SELECT GROUP_CONCAT(b) FROM t1",
    "SELECT STRCMP(b, 'beta') FROM t1",
    "SELECT INSTR(b, 'a'), LOCATE('a', b) FROM t1",
    "SELECT LPAD(b, 8, '*') FROM t1",
    "SELECT REVERSE(b) FROM t1",
    "SELECT LENGTH(x'01020304')",
    "SELECT DATE_ADD('2024-01-15', INTERVAL 10 DAY)",
];

/// Extra dialect-flavoured queries.
pub fn dialect_queries(id: DialectId) -> &'static [&'static str] {
    match id {
        DialectId::Postgres => &[
            "SELECT SPLIT_PART('a,b,c', ',', 2)",
            "SELECT INITCAP('hello world')",
            "SELECT TRANSLATE('abc', 'ab', 'xy')",
            "SELECT STRING_AGG(b) FROM t1",
            "SELECT '123'::INTEGER + 1",
            "SELECT JSONB_OBJECT_AGG(k, v) FROM t2",
            "SELECT REGEXP_REPLACE(b, 'a+', '_') FROM t1",
            "SELECT TO_CHAR(c) FROM t1",
        ],
        DialectId::Mysql => &[
            "SELECT ELT(2, 'a', 'b', 'c')",
            "SELECT FIELD('b', 'a', 'b')",
            "SELECT FIND_IN_SET('b', 'a,b,c')",
            "SELECT EXPORT_SET(5, 'Y', 'N')",
            "SELECT UpdateXML('<a><c></c></a>', '/a/c[1]', '<b></b>')",
            "SELECT ExtractValue('<a><b>x</b></a>', '/a/b')",
            "SELECT DATE_FORMAT(d, '%Y/%m') FROM t3",
            "SELECT CONCAT_WS('-', b, b) FROM t1",
            "SELECT INET_ATON('10.0.0.1'), INET_NTOA(167772161)",
            "SELECT BENCHMARK(10, 1)",
        ],
        DialectId::Mariadb => &[
            "SELECT COLUMN_JSON(COLUMN_CREATE('x', 1))",
            "SELECT COLUMN_GET(COLUMN_CREATE('x', 7), 'x')",
            "SELECT JSON_EXTRACT(j, '$.n') FROM t3",
            "SELECT ST_ASTEXT(ST_GEOMFROMTEXT('POINT(1 2)'))",
            "SELECT INET6_NTOA(INET6_ATON('::1'))",
            "SELECT FORMAT(12345.678, 2)",
            "SELECT NEXTVAL('s1'), NEXTVAL('s1')",
            "SELECT SOUNDEX('Robert')",
        ],
        DialectId::Clickhouse => &[
            "SELECT toString(42)",
            "SELECT toInt64('17') + 1",
            "SELECT toDecimalString(1.25, 4)",
            "SELECT element_at([10, 20, 30], 2)",
            "SELECT array_concat([1], [2, 3])",
            "SELECT map_keys(MAP('k', 1))",
            "SELECT arrayDistinct([1, 1, 2])",
            "SELECT startsWith(b, 'a') FROM t1",
        ],
        DialectId::Monetdb => &[
            "SELECT ASCII(k), CHAR(65, 66) FROM t2",
            "SELECT MEDIAN(v) FROM t2",
            "SELECT STDDEV_SAMP(v) FROM t2",
            "SELECT SPLIT_PART('x|y', '|', 1)",
            "SELECT TRANSLATE(k, 'xy', 'ab') FROM t2",
        ],
        DialectId::Duckdb => &[
            "SELECT list_value(1, 2, 3)",
            "SELECT array_slice([1, 2, 3, 4], 2, 3)",
            "SELECT array_sort([3, 1, 2])",
            "SELECT map_from_entries([ROW('a', 1)])",
            "SELECT TRY_CAST('xyz', 'INTEGER')",
            "SELECT array_contains([1, 2], a) FROM t1",
            "SELECT MEDIAN(a) FROM t1",
        ],
        DialectId::Virtuoso => &[
            "SELECT CONTAINS(b, 'a') FROM t1",
            "SELECT REGEXP_LIKE(b, '^a') FROM t1",
            "SELECT SIGN(c) FROM t1",
            "SELECT COT(0.7)",
            "SELECT BIT_AND(v), BIT_OR(v) FROM t2",
        ],
    }
}

/// The full seed script for a dialect (prep + shared + dialect queries).
pub fn seed_corpus(id: DialectId) -> Vec<String> {
    let mut out: Vec<String> = SHARED_PREP.iter().map(|s| s.to_string()).collect();
    out.extend(SHARED_QUERIES.iter().map(|s| s.to_string()));
    out.extend(dialect_queries(id).iter().map(|s| s.to_string()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_nonempty_and_parse() {
        for id in DialectId::ALL {
            let corpus = seed_corpus(id);
            assert!(corpus.len() >= 35, "{id:?} corpus too small");
            for sql in &corpus {
                soft_parser::parse_statement(sql)
                    .unwrap_or_else(|e| panic!("{id:?}: {sql}: {e}"));
            }
        }
    }
}
