//! The seven simulated DBMS dialect profiles.
//!
//! A profile bundles everything SOFT (or a baseline) needs to test one
//! target: an engine configuration (strictness, limits), a function catalog
//! with dialect-flavoured names, the synthesised documentation, the seed
//! test suite, and the Table-4 fault corpus.

use crate::docs::{self, DocFunction};
use crate::faults::{self, CorpusFault};
use crate::seeds;
use soft_engine::fault::{FaultSet, LogicQuirkSpec};
use soft_engine::registry::{FunctionRegistry, Limits};
use soft_engine::{Engine, EngineConfig};
use soft_types::cast::CastStrictness;

/// The simulated DBMS targets, named after the systems the paper tested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DialectId {
    /// PostgreSQL-like: strict type system, few boundary bugs (§7.3).
    Postgres,
    /// MySQL-like.
    Mysql,
    /// MariaDB-like (adds dynamic columns, sequences).
    Mariadb,
    /// ClickHouse-like: the largest function catalog (camelCase aliases).
    Clickhouse,
    /// MonetDB-like: the smallest catalog.
    Monetdb,
    /// DuckDB-like: arrays/maps/try_cast.
    Duckdb,
    /// Virtuoso-like.
    Virtuoso,
}

impl DialectId {
    /// All seven targets, in the paper's order.
    pub const ALL: [DialectId; 7] = [
        DialectId::Postgres,
        DialectId::Mysql,
        DialectId::Mariadb,
        DialectId::Clickhouse,
        DialectId::Monetdb,
        DialectId::Duckdb,
        DialectId::Virtuoso,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DialectId::Postgres => "PostgreSQL",
            DialectId::Mysql => "MySQL",
            DialectId::Mariadb => "MariaDB",
            DialectId::Clickhouse => "ClickHouse",
            DialectId::Monetdb => "MonetDB",
            DialectId::Duckdb => "DuckDB",
            DialectId::Virtuoso => "Virtuoso",
        }
    }

    /// Stable lowercase key used in fault ids and reports.
    pub fn key(&self) -> &'static str {
        match self {
            DialectId::Postgres => "postgresql",
            DialectId::Mysql => "mysql",
            DialectId::Mariadb => "mariadb",
            DialectId::Clickhouse => "clickhouse",
            DialectId::Monetdb => "monetdb",
            DialectId::Duckdb => "duckdb",
            DialectId::Virtuoso => "virtuoso",
        }
    }

    /// Resolves a dialect from its display name or stable key,
    /// case-insensitively (`"ClickHouse"`, `"clickhouse"`, `"POSTGRESQL"`).
    /// The inverse of [`DialectId::name`] / [`DialectId::key`] — CLI
    /// arguments and forensics bundles round-trip through it.
    pub fn from_name(name: &str) -> Option<DialectId> {
        DialectId::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name) || d.key().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for DialectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully built dialect profile.
#[derive(Debug, Clone)]
pub struct DialectProfile {
    /// Which target this is.
    pub id: DialectId,
    /// Engine configuration.
    pub config: EngineConfig,
    /// The function catalog.
    pub registry: FunctionRegistry,
    /// Synthesised documentation (one example per exposed name).
    pub documentation: Vec<DocFunction>,
    /// The seed test suite.
    pub seed_corpus: Vec<String>,
    /// The Table-4 fault corpus (with witnesses).
    pub faults: Vec<CorpusFault>,
    /// The wrong-result quirk corpus (injected logic bugs; see
    /// [`faults::logic_quirks`]).
    pub logic_quirks: Vec<LogicQuirkSpec>,
}

impl DialectProfile {
    /// Builds the profile for a target.
    pub fn build(id: DialectId) -> DialectProfile {
        let registry = build_registry(id);
        let documentation = docs::documentation(&registry);
        let seed_corpus = seeds::seed_corpus(id);
        let faults = faults::build_corpus(id, &registry);
        let logic_quirks = faults::logic_quirks(id);
        let config = EngineConfig {
            name: id.name().to_string(),
            strictness: match id {
                DialectId::Postgres | DialectId::Monetdb => CastStrictness::Strict,
                _ => CastStrictness::Lenient,
            },
            limits: Limits::default(),
        };
        DialectProfile {
            id,
            config,
            registry,
            documentation,
            seed_corpus,
            faults,
            logic_quirks,
        }
    }

    /// Builds all seven profiles.
    pub fn all() -> Vec<DialectProfile> {
        DialectId::ALL.into_iter().map(DialectProfile::build).collect()
    }

    /// Creates a fresh engine instance for this target, faults and
    /// wrong-result quirks armed.
    pub fn engine(&self) -> Engine {
        let faults = FaultSet::with_quirks(
            self.faults.iter().map(|f| f.spec.clone()).collect(),
            self.logic_quirks.clone(),
        );
        Engine::new(self.config.clone(), self.registry.clone(), faults)
    }

    /// Creates a fault-free engine (the "fixed" build — no crashes, no
    /// wrong-result quirks), for differential checks.
    pub fn engine_without_faults(&self) -> Engine {
        Engine::new(self.config.clone(), self.registry.clone(), FaultSet::default())
    }
}

/// Removes a set of canonical names from a registry.
fn remove_all(r: &mut FunctionRegistry, names: &[&str]) {
    for n in names {
        r.remove(n);
    }
}

/// ClickHouse-style camelCase from a snake_case canonical name.
fn camel_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut upper_next = false;
    for c in name.chars() {
        if c == '_' {
            upper_next = true;
        } else if upper_next {
            out.extend(c.to_uppercase());
            upper_next = false;
        } else {
            out.push(c);
        }
    }
    out
}

fn base_registry() -> FunctionRegistry {
    let mut r = FunctionRegistry::new();
    soft_engine::functions::install_all(&mut r);
    soft_engine::functions::install_common_aliases(&mut r);
    r
}

/// MySQL/MariaDB-only surface removed from other dialects.
const MYSQLISMS: &[&str] = &[
    "column_create",
    "column_json",
    "column_get",
    "elt",
    "field",
    "find_in_set",
    "export_set",
    "updatexml",
    "extractvalue",
    "benchmark",
];

/// ClickHouse-style conversion helpers.
const CLICKHOUSEISMS: &[&str] = &["todecimalstring", "tostring", "toint64", "tofloat64"];

fn build_registry(id: DialectId) -> FunctionRegistry {
    let mut r = base_registry();
    match id {
        DialectId::Postgres => {
            remove_all(&mut r, MYSQLISMS);
            remove_all(&mut r, CLICKHOUSEISMS);
            remove_all(&mut r, &["nextval", "currval", "lastval", "setval"]);
            // Re-add sequences: PostgreSQL does have them.
            r.alias("nextval", "nextval");
            // PostgreSQL spellings.
            for (alias, canonical) in [
                ("pg_typeof", "typeof"),
                ("char_length", "char_length"),
                ("lower_inf", "isnull"),
                ("array_cat", "array_concat"),
                ("array_upper", "array_length"),
                ("jsonb_array_length", "json_length"),
                ("jsonb_typeof", "json_type"),
                ("jsonb_object_keys", "json_keys"),
                ("to_json", "tojsonstring"),
                ("quote_literal", "quote"),
                ("quote_ident", "quote"),
                ("btrim", "trim"),
                ("strpos", "instr"),
                ("substring_index", "split_part"),
                ("date_part", "year"),
                ("date_trunc", "date"),
                ("width_bucket", "least"),
                ("string_to_array", "split_part"),
                ("encode", "to_base64"),
                ("decode", "from_base64"),
                ("gen_random_uuid", "uuid"),
                ("setseed", "rand"),
                ("random", "rand"),
                ("st_geomfromewkt", "st_geomfromtext"),
                ("st_asewkt", "st_astext"),
                ("st_numgeometries", "st_numpoints"),
                ("st_perimeter", "st_length"),
                ("st_centroid", "st_envelope"),
                ("st_within", "st_contains"),
                ("jsonb_pretty", "tojsonstring"),
                ("json_array_length", "json_length"),
                ("json_each", "json_keys"),
                ("json_build_object", "json_object"),
                ("json_build_array", "json_array"),
                ("json_strip_nulls", "json_remove"),
                ("regexp_match", "regexp_substr"),
                ("regexp_count", "regexp_instr"),
                ("parse_ident", "split_part"),
                ("to_hex", "hex"),
                ("get_byte", "ascii"),
                ("bit_and_agg", "bit_and"),
                ("bit_or_agg", "bit_or"),
                ("every", "bool_and"),
                ("unistr", "chr"),
                ("to_timestamp", "from_unixtime"),
                ("make_date", "makedate"),
                ("make_time", "maketime"),
                ("make_interval", "sec_to_time"),
                ("justify_days", "to_days"),
                ("age", "datediff"),
                ("isfinite", "is_ipv4"),
                ("clock_timestamp", "now"),
                ("statement_timestamp", "now"),
                ("transaction_timestamp", "now"),
                ("timeofday", "curtime"),
            ] {
                r.alias(alias, canonical);
            }
        }
        DialectId::Mysql => {
            remove_all(&mut r, CLICKHOUSEISMS);
            remove_all(
                &mut r,
                &[
                    "split_part", "translate", "initcap", "string_agg", "bool_and", "bool_or",
                    "median", "array_agg", "jsonb_object_agg", "nextval", "currval", "lastval",
                    "setval", "list_value", "array_slice", "array_sort", "array_min", "array_max",
                    "array_sum", "map_from_entries", "cardinality", "element_at", "try_cast",
                    "column_create", "column_json", "column_get", "chr", "to_char", "to_number",
                    "to_date", "tojsonstring", "typeof", "split_part", "starts_with", "ends_with",
                    "factorial", "gcd", "lcm", "cbrt", "decode",
                ],
            );
            for (alias, canonical) in [
                ("json_merge_patch", "json_merge"),
                ("json_pretty", "json_unquote"),
                ("json_storage_size", "json_depth"),
                ("weight_string", "quote"),
                ("oct", "hex"),
                ("ord", "ascii"),
                ("bin", "hex"),
                ("yearweek", "week"),
                ("to_seconds", "to_days"),
                ("utc_timestamp", "now"),
                ("utc_date", "curdate"),
                ("utc_time", "curtime"),
                ("sysdate", "now"),
                ("convert_tz", "date"),
                ("make_set", "elt"),
                ("substring_index", "left"),
                ("crc32", "bit_length"),
                ("uncompressed_length", "length"),
                ("is_uuid", "is_ipv4"),
                ("any_value", "min"),
                ("json_overlaps", "json_contains"),
                ("json_value", "json_extract"),
                ("st_srid", "st_dimension"),
                ("st_isvalid", "st_isempty"),
                ("mbrcontains", "st_contains"),
                ("mbrequals", "st_equals"),
            ] {
                r.alias(alias, canonical);
            }
        }
        DialectId::Mariadb => {
            remove_all(&mut r, CLICKHOUSEISMS);
            remove_all(
                &mut r,
                &[
                    "split_part", "initcap", "bool_and", "bool_or", "array_agg", "list_value",
                    "array_slice", "array_sort", "array_min", "array_max", "array_sum",
                    "map_from_entries", "cardinality", "element_at", "try_cast",
                    "jsonb_object_agg", "chr", "to_number", "tojsonstring", "typeof",
                    "starts_with", "ends_with", "factorial", "gcd", "lcm", "cbrt", "decode",
                    "to_date",
                ],
            );
            for (alias, canonical) in [
                ("json_detailed", "json_unquote"),
                ("json_compact", "json_unquote"),
                ("json_exists", "json_contains"),
                ("json_query", "json_extract"),
                ("value_compare", "strcmp"),
                ("del_privileges", "version"),
                ("spider_bg_direct_sql", "version"),
                ("lastval_helper", "lastval"),
                ("sformat", "format"),
                ("natural_sort_key", "soundex"),
                ("sysdate", "now"),
                ("add_months", "date_add"),
                ("oct", "hex"),
                ("ord", "ascii"),
            ] {
                r.alias(alias, canonical);
            }
        }
        DialectId::Clickhouse => {
            remove_all(&mut r, MYSQLISMS);
            // CamelCase aliases for the whole catalog — this is why the
            // ClickHouse-like target exposes by far the most names
            // (Table 5's ordering).
            let canonical: Vec<&'static str> = r.defs().iter().map(|d| d.name).collect();
            for name in canonical {
                let cc = camel_case(name);
                if cc != name {
                    r.alias(&cc, name);
                }
            }
            for (alias, canonical) in [
                ("toUpperCase", "upper"),
                ("toLowerCase", "lower"),
                ("lengthUTF8", "char_length"),
                ("reverseUTF8", "reverse"),
                ("substringUTF8", "substr"),
                ("positionCaseInsensitive", "position"),
                ("arrayElement", "element_at"),
                ("arrayConcat", "array_concat"),
                ("arrayPushBack", "array_append"),
                ("arrayPushFront", "array_prepend"),
                ("arrayDistinct", "array_distinct"),
                ("arrayReverse", "array_reverse"),
                ("arraySort", "array_sort"),
                ("arrayMin", "array_min"),
                ("arrayMax", "array_max"),
                ("arraySum", "array_sum"),
                ("arraySlice", "array_slice"),
                ("has", "array_contains"),
                ("indexOf", "array_position"),
                ("mapKeys", "map_keys"),
                ("mapValues", "map_values"),
                ("mapContains", "map_contains_key"),
                ("toInt32", "toint64"),
                ("toInt8", "toint64"),
                ("toUInt64", "toint64"),
                ("toFloat32", "tofloat64"),
                ("toDate", "to_date"),
                ("toDateTime", "str_to_date"),
                ("formatDateTime", "date_format"),
                ("toYear", "year"),
                ("toMonth", "month"),
                ("toDayOfMonth", "day"),
                ("toDayOfWeek", "dayofweek"),
                ("toHour", "hour"),
                ("toMinute", "minute"),
                ("toSecond", "second"),
                ("toStartOfMonth", "last_day"),
                ("toQuarter", "quarter"),
                ("toUnixTimestamp", "unix_timestamp"),
                ("addDays", "date_add"),
                ("subtractDays", "date_sub"),
                ("plus", "pow"),
                ("minus", "mod"),
                ("intDiv", "div"),
                ("modulo", "mod"),
                ("emptyArrayInt64", "list_value"),
                ("notEmpty", "length"),
                ("empty", "length"),
                ("JSONLength", "json_length"),
                ("JSONExtractRaw", "json_extract"),
                ("JSONHas", "json_contains"),
                ("JSONType", "json_type"),
                ("isValidJSON", "json_valid"),
                ("visitParamHas", "json_contains"),
                ("IPv4NumToString", "inet_ntoa"),
                ("IPv4StringToNum", "inet_aton"),
                ("IPv6StringToNum", "inet6_aton"),
                ("IPv6NumToString", "inet6_ntoa"),
                ("generateUUIDv4", "uuid"),
                ("cityHash64", "md5"),
                ("sipHash64", "sha1"),
                ("halfMD5", "md5"),
                ("hostName", "database"),
                ("currentUser", "user"),
                ("bitAnd", "bit_and"),
                ("bitOr", "bit_or"),
                ("bitXor", "bit_xor"),
                ("e", "pi"),
                ("erf", "exp"),
                ("lgamma", "ln"),
                ("tgamma", "exp"),
                ("roundToExp2", "round"),
                ("roundDuration", "round"),
                ("roundAge", "round"),
            ] {
                r.alias(alias, canonical);
            }
        }
        DialectId::Monetdb => {
            remove_all(&mut r, MYSQLISMS);
            remove_all(&mut r, CLICKHOUSEISMS);
            remove_all(
                &mut r,
                &[
                    // MonetDB-like: the smallest surface.
                    "json_set", "json_insert", "json_replace", "json_remove", "json_search",
                    "json_merge", "json_keys", "json_quote", "json_unquote", "json_contains",
                    "json_array", "json_object", "json_depth", "updatexml", "extractvalue",
                    "xml_valid", "beautify_xml", "st_contains", "st_equals", "st_distance",
                    "st_envelope", "boundary", "st_isempty", "st_aswkb", "st_geomfromwkb",
                    "linestring", "point", "st_x", "st_y", "st_dimension", "st_numpoints",
                    "st_length", "st_area", "st_geometrytype", "array_agg", "list_value",
                    "array_slice", "array_sort", "array_min", "array_max", "array_sum",
                    "array_concat", "array_append", "array_prepend", "array_contains",
                    "array_position", "array_distinct", "array_reverse", "array_length",
                    "map", "map_keys", "map_values", "map_contains_key", "map_from_entries",
                    "cardinality", "element_at", "try_cast", "group_concat", "json_arrayagg",
                    "json_objectagg", "jsonb_object_agg", "export_set", "elt", "field",
                    "find_in_set", "soundex", "from_base64", "to_base64", "date_format",
                    "str_to_date", "makedate", "maketime", "period_add", "period_diff",
                    "from_unixtime", "addtime", "subtime", "sha2", "uuid", "benchmark",
                    "inet_aton", "inet_ntoa", "inet6_aton", "inet6_ntoa", "is_ipv4", "is_ipv6",
                    "decode", "nvl2",
                ],
            );
            r.alias("sql_min", "least");
            r.alias("sql_max", "greatest");
            r.alias("ms_trunc", "truncate");
            r.alias("ms_round", "round");
            r.alias("code", "chr");
        }
        DialectId::Duckdb => {
            remove_all(&mut r, MYSQLISMS);
            remove_all(&mut r, CLICKHOUSEISMS);
            remove_all(&mut r, &["nextval", "currval", "lastval", "setval"]);
            for (alias, canonical) in [
                ("list_element", "element_at"),
                ("list_extract", "element_at"),
                ("list_append", "array_append"),
                ("list_prepend", "array_prepend"),
                ("list_concat", "array_concat"),
                ("list_distinct", "array_distinct"),
                ("list_reverse", "array_reverse"),
                ("list_sort", "array_sort"),
                ("list_min", "array_min"),
                ("list_max", "array_max"),
                ("list_sum", "array_sum"),
                ("list_position", "array_position"),
                ("len", "length"),
                ("strlen", "length"),
                ("prefix", "starts_with"),
                ("suffix", "ends_with"),
                ("string_split", "split_part"),
                ("str_split", "split_part"),
                ("regexp_full_match", "regexp_like"),
                ("regexp_extract", "regexp_substr"),
                ("to_base", "hex"),
                ("nextafter", "pow"),
                ("fdiv", "div"),
                ("fmod", "mod"),
                ("list_aggregate", "array_sum"),
                ("struct_pack", "map"),
                ("current_setting", "version"),
                ("txid_current", "connection_id"),
                ("strftime", "date_format"),
                ("strptime", "str_to_date"),
                ("epoch", "unix_timestamp"),
                ("epoch_ms", "unix_timestamp"),
            ] {
                r.alias(alias, canonical);
            }
        }
        DialectId::Virtuoso => {
            remove_all(&mut r, CLICKHOUSEISMS);
            remove_all(
                &mut r,
                &[
                    "column_create", "column_json", "column_get", "array_agg", "list_value",
                    "array_sort", "array_min", "array_max", "array_sum", "map_from_entries",
                    "try_cast", "median", "find_in_set", "export_set", "elt",
                ],
            );
            for (alias, canonical) in [
                ("aref", "element_at"),
                ("vector_helper", "map"),
                ("subseq", "substr"),
                ("strstr", "instr"),
                ("strchr", "instr"),
                ("strrchr", "instr"),
                ("ucase_helper", "upper"),
                ("lcase_helper", "lower"),
                ("chr1", "chr"),
                ("sprintf", "format"),
                ("atoi", "toint64"),
                ("atof", "tofloat64"),
                ("dv_type_title", "typeof"),
                ("xpath_eval", "extractvalue"),
                ("xtree_doc", "xml_valid"),
                ("xml_cut", "beautify_xml"),
                ("st_geomfromtext_v", "st_geomfromtext"),
                ("http_url", "quote"),
                ("split_and_decode", "split_part"),
                ("trx_helper", "connection_id"),
                ("sequence_next", "nextval"),
                ("sequence_set", "setval"),
            ] {
                r.alias(alias, canonical);
            }
        }
    }
    r
}

// The parallel campaign runner shares one profile across worker threads by
// reference; keep the profile (and thus its registry, corpus, and fault
// specs) `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DialectProfile>();
    assert_send_sync::<DialectId>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_build() {
        let all = DialectProfile::all();
        assert_eq!(all.len(), 7);
        for p in &all {
            assert!(p.registry.name_count() > 80, "{}: catalog too small", p.id);
            assert!(!p.documentation.is_empty());
            assert!(!p.seed_corpus.is_empty());
        }
    }

    #[test]
    fn catalog_size_ordering_matches_table5() {
        // Table 5: ClickHouse > PostgreSQL > MySQL > MariaDB > MonetDB.
        let size = |id| DialectProfile::build(id).registry.name_count();
        let ch = size(DialectId::Clickhouse);
        let pg = size(DialectId::Postgres);
        let my = size(DialectId::Mysql);
        let ma = size(DialectId::Mariadb);
        let mo = size(DialectId::Monetdb);
        assert!(ch > pg, "clickhouse {ch} <= postgres {pg}");
        assert!(pg > my, "postgres {pg} <= mysql {my}");
        assert!(my > ma, "mysql {my} <= mariadb {ma}");
        assert!(ma > mo, "mariadb {ma} <= monetdb {mo}");
    }

    #[test]
    fn strictness_assignment() {
        assert_eq!(
            DialectProfile::build(DialectId::Postgres).config.strictness,
            CastStrictness::Strict
        );
        assert_eq!(
            DialectProfile::build(DialectId::Mysql).config.strictness,
            CastStrictness::Lenient
        );
    }

    #[test]
    fn engines_are_independent() {
        let p = DialectProfile::build(DialectId::Mysql);
        let mut a = p.engine();
        let mut b = p.engine();
        a.execute("CREATE TABLE only_in_a (x INTEGER)");
        assert!(matches!(
            b.execute("SELECT * FROM only_in_a"),
            soft_engine::ExecOutcome::Error(_)
        ));
    }

    #[test]
    fn camel_case_conversion() {
        assert_eq!(camel_case("array_length"), "arrayLength");
        assert_eq!(camel_case("upper"), "upper");
        assert_eq!(camel_case("json_object_agg"), "jsonObjectAgg");
    }

    #[test]
    fn fault_free_engine_never_crashes_on_witnesses() {
        for id in DialectId::ALL {
            let p = DialectProfile::build(id);
            let mut clean = p.engine_without_faults();
            for f in &p.faults {
                let out = clean.execute(&f.witness);
                assert!(
                    !out.is_crash(),
                    "{id:?}: fixed engine crashed on {}",
                    f.witness
                );
            }
        }
    }
}
