//! A seedable, dependency-free PRNG for the whole workspace.
//!
//! Every source of randomness in the reproduction flows through [`Rng`]: a
//! xoshiro256\*\* core seeded via SplitMix64, the combination recommended by
//! the xoshiro authors (Blackman & Vigna, "Scrambled linear pseudorandom
//! number generators"). The generator is *not* cryptographic — it exists so
//! that campaigns, baselines and property tests are reproducible from a
//! single `u64` seed with no external crates, which is what makes benchmark
//! deltas between PRs trustworthy (see README.md, "Hermetic build").
//!
//! # Examples
//!
//! ```
//! use soft_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1..7i64);
//! assert!((1..7).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let _ = coin;
//! // Identical seeds give identical streams.
//! assert_eq!(
//!     Rng::seed_from_u64(7).next_u64(),
//!     Rng::seed_from_u64(7).next_u64(),
//! );
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod prop;

use std::ops::Range;

/// The workspace PRNG: xoshiro256\*\* seeded through SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// One SplitMix64 step — used for seeding and for deriving sub-seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Builds a generator from a 64-bit seed.
    ///
    /// The four state words are drawn from a SplitMix64 stream, which
    /// guarantees a non-zero, well-mixed state for every seed (an all-zero
    /// state would be a fixed point of the xoshiro transition).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits (the xoshiro256\*\* output).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `u64` below `bound` (`bound > 0`), via Lemire's widening
    /// multiply. The modulo bias is at most 2⁻⁶⁴ per draw — irrelevant for
    /// test generation, and crucially *deterministic*.
    #[inline]
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform float in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from a half-open range. Works for every primitive
    /// integer type and `f64`; panics on an empty range, like `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit_f64() < p
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.bounded(slice.len() as u64) as usize;
            Some(&slice[idx])
        }
    }

    /// An in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent generator (for splitting one seed across
    /// sub-tasks without correlating their streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                // Span arithmetic in the unsigned domain so that ranges
                // straddling zero (e.g. -50..50) cannot overflow.
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = if span <= u64::MAX as u128 {
                    u128::from(rng.bounded(span as u64))
                } else {
                    // i128 ranges wider than 2^64: reduce 128 random bits
                    // modulo the span (bias < 2^-64, and deterministic).
                    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                    wide % span
                };
                ((self.start as i128).wrapping_add(draw as i128)) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_unit_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256ss() {
        // First outputs for the state {1, 2, 3, 4} (the published reference
        // sequence for xoshiro256**).
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![11520, 0, 1509978240, 1215971899390074240, 1216172134540287360]
        );
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(99);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(99);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(100);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_for_all_int_shapes() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..2000 {
            assert!((0..6).contains(&rng.gen_range(0..6)));
            assert!((0..100i64).contains(&rng.gen_range(0..100i64)));
            assert!((-50..0i64).contains(&rng.gen_range(-50..0i64)));
            assert!((1..6usize).contains(&rng.gen_range(1..6usize)));
            assert!((0..26u8).contains(&rng.gen_range(0..26u8)));
            let big = rng.gen_range(-10_000_000_000i128..10_000_000_000);
            assert!((-10_000_000_000..10_000_000_000).contains(&big));
            let f = rng.gen_range(0.0..10.0f64);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_single_value_range() {
        let mut rng = Rng::seed_from_u64(5);
        assert_eq!(rng.gen_range(7..8i64), 7);
    }

    #[test]
    fn gen_range_hits_both_endpoints_of_a_small_range() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn gen_bool_respects_probability_roughly() {
        let mut rng = Rng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle_are_deterministic_permutations() {
        let mut rng = Rng::seed_from_u64(21);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        let mut v: Vec<u32> = (0..16).collect();
        let mut w = v.clone();
        Rng::seed_from_u64(77).shuffle(&mut v);
        Rng::seed_from_u64(77).shuffle(&mut w);
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "16 elements should not shuffle to identity");
    }

    #[test]
    fn forked_generators_diverge() {
        let mut base = Rng::seed_from_u64(1);
        let mut f1 = base.fork();
        let mut f2 = base.fork();
        let a: Vec<u64> = (0..8).map(|_| f1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| f2.next_u64()).collect();
        assert_ne!(a, b);
    }
}
