//! A deterministic, dependency-free property-testing harness.
//!
//! The workspace's property tests (`tests/property.rs` at the root) used to
//! run under `proptest`; this module replaces it so the test suite builds
//! offline. The harness keeps the three behaviours the tests relied on:
//!
//! 1. **Seeded case generation** — every case is generated from an [`Rng`]
//!    derived from `(suite seed, case index)`, so a failure report names a
//!    single `u64` that reproduces it (`SOFT_PROP_SEED` overrides the suite
//!    seed, `SOFT_PROP_CASES` the case count).
//! 2. **Shrink on failure** — a failing value is reduced through a
//!    test-supplied candidate function until no smaller candidate fails,
//!    bounded by a step budget.
//! 3. **Regression replay** — recorded failure values (the
//!    `tests/property.proptest-regressions` ledger) run *before* any fresh
//!    case, via [`Check::regressions`].
//!
//! # Examples
//!
//! ```
//! use soft_rng::prop::Check;
//!
//! Check::new("addition_commutes")
//!     .cases(64)
//!     .run(
//!         |rng| (rng.gen_range(-100..100i64), rng.gen_range(-100..100i64)),
//!         |&(a, b)| {
//!             if a + b == b + a { Ok(()) } else { Err("not commutative".into()) }
//!         },
//!     );
//! ```

use crate::{splitmix64, Rng};
use std::fmt::Debug;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 256;
/// Default shrink-step budget per failure.
pub const DEFAULT_SHRINK_STEPS: u32 = 2_000;
/// Default suite seed (any fixed value works; this one spells "soft").
pub const DEFAULT_SEED: u64 = 0x50F7_50F7_50F7_50F7;

/// One property check: configuration plus the run entry points.
pub struct Check<T> {
    name: &'static str,
    cases: u32,
    seed: u64,
    shrink_steps: u32,
    regressions: Vec<T>,
    shrink: Option<Box<dyn Fn(&T) -> Vec<T>>>,
}

impl<T: Debug + Clone> Check<T> {
    /// Starts a check with the default configuration.
    pub fn new(name: &'static str) -> Check<T> {
        Check {
            name,
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            shrink_steps: DEFAULT_SHRINK_STEPS,
            regressions: Vec::new(),
            shrink: None,
        }
    }

    /// Overrides the number of generated cases.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the suite seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Values replayed before any fresh generation — the regression ledger.
    pub fn regressions(mut self, values: impl IntoIterator<Item = T>) -> Self {
        self.regressions.extend(values);
        self
    }

    /// Installs a shrinker: candidates strictly "smaller" than the input.
    /// The harness keeps the first candidate that still fails, repeatedly,
    /// under a step budget.
    pub fn shrink(mut self, shrink: impl Fn(&T) -> Vec<T> + 'static) -> Self {
        self.shrink = Some(Box::new(shrink));
        self
    }

    /// Runs the property: regressions first, then `cases` generated values.
    ///
    /// Panics with the seed, case index and (shrunk) counterexample on the
    /// first failure.
    pub fn run(
        self,
        mut gen: impl FnMut(&mut Rng) -> T,
        mut prop: impl FnMut(&T) -> Result<(), String>,
    ) {
        let seed = env_u64("SOFT_PROP_SEED").unwrap_or(self.seed);
        let cases = env_u64("SOFT_PROP_CASES").map(|n| n as u32).unwrap_or(self.cases);
        for (i, value) in self.regressions.iter().enumerate() {
            if let Err(msg) = prop(value) {
                panic!(
                    "property `{}` failed on regression case {i}: {msg}\n  value: {value:?}",
                    self.name
                );
            }
        }
        for case in 0..cases {
            // Derive the per-case stream from (seed, case) so any single
            // case replays without running its predecessors.
            let mut mix = seed ^ u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F);
            let mut rng = Rng::seed_from_u64(splitmix64(&mut mix));
            let value = gen(&mut rng);
            if let Err(msg) = prop(&value) {
                let (value, msg, steps) = self.shrunk(value, msg, &mut prop);
                panic!(
                    "property `{}` failed (seed {seed:#x}, case {case}/{cases}, \
                     {steps} shrink steps): {msg}\n  counterexample: {value:?}\n  \
                     replay with SOFT_PROP_SEED={seed}",
                    self.name
                );
            }
        }
    }

    /// Reduces a failing value through the shrinker, returning the smallest
    /// still-failing value, its failure message and the steps taken.
    fn shrunk(
        &self,
        mut value: T,
        mut msg: String,
        prop: &mut impl FnMut(&T) -> Result<(), String>,
    ) -> (T, String, u32) {
        let Some(shrink) = &self.shrink else { return (value, msg, 0) };
        let mut steps = 0u32;
        'outer: while steps < self.shrink_steps {
            for candidate in shrink(&value) {
                steps += 1;
                if let Err(m) = prop(&candidate) {
                    value = candidate;
                    msg = m;
                    continue 'outer;
                }
                if steps >= self.shrink_steps {
                    break;
                }
            }
            break; // No candidate failed: local minimum.
        }
        (value, msg, steps)
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Stock shrink candidates for integers: halves towards zero, then ±1 steps.
pub fn shrink_i128(v: i128) -> Vec<i128> {
    if v == 0 {
        return vec![];
    }
    let mut out = vec![0, v / 2];
    out.push(v - v.signum());
    out.dedup();
    out.retain(|c| c.abs() < v.abs());
    out
}

/// Stock shrink candidates for strings: empty, halves, drop-one-char.
pub fn shrink_string(s: &str) -> Vec<String> {
    if s.is_empty() {
        return vec![];
    }
    let chars: Vec<char> = s.chars().collect();
    let mut out = vec![String::new(), chars[..chars.len() / 2].iter().collect()];
    for i in 0..chars.len() {
        let mut t = String::with_capacity(s.len());
        t.extend(chars[..i].iter());
        t.extend(chars[i + 1..].iter());
        out.push(t);
    }
    out.retain(|c| c.len() < s.len());
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        Check::new("always_true").cases(50).run(
            |rng| rng.gen_range(0..10i64),
            |v| if *v < 10 { Ok(()) } else { Err("out of range".into()) },
        );
    }

    #[test]
    fn failing_property_panics_with_counterexample() {
        let result = std::panic::catch_unwind(|| {
            Check::new("finds_big_values").cases(200).run(
                |rng| rng.gen_range(0..1000i64),
                |v| if *v < 900 { Ok(()) } else { Err("too big".into()) },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("finds_big_values"), "{msg}");
        assert!(msg.contains("counterexample"), "{msg}");
    }

    #[test]
    fn shrinking_reaches_the_boundary() {
        let result = std::panic::catch_unwind(|| {
            Check::new("shrinks_to_minimum")
                .cases(200)
                .shrink(|v| shrink_i128(*v))
                .run(
                    |rng| rng.gen_range(0..100_000i128),
                    |v| if *v < 500 { Ok(()) } else { Err(format!("{v} >= 500")) },
                );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // The minimal counterexample for `v < 500` is exactly 500.
        assert!(msg.contains("counterexample: 500"), "{msg}");
    }

    #[test]
    fn regressions_run_before_generation() {
        let result = std::panic::catch_unwind(|| {
            Check::new("regression_first")
                .regressions([7i128])
                .run(|rng| rng.gen_range(0..5i128), |v| {
                    if *v == 7 {
                        Err("recorded failure".into())
                    } else {
                        Ok(())
                    }
                });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("regression case 0"), "{msg}");
    }

    #[test]
    fn string_shrinker_produces_strictly_smaller_candidates() {
        for c in shrink_string("abcdef") {
            assert!(c.len() < 6);
        }
        assert!(shrink_string("").is_empty());
    }
}
