//! The data model of the characteristic study (§3–§5).

use soft_types::category::FunctionCategory;
use std::fmt;

/// The three DBMSs the study collected bugs from (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StudiedDbms {
    /// PostgreSQL (bug report mailing list + CVEs).
    Postgres,
    /// MySQL (MySQL Bug System).
    Mysql,
    /// MariaDB (JIRA).
    Mariadb,
}

impl StudiedDbms {
    /// All three, Table 1 order.
    pub const ALL: [StudiedDbms; 3] =
        [StudiedDbms::Postgres, StudiedDbms::Mysql, StudiedDbms::Mariadb];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StudiedDbms::Postgres => "PostgreSQL",
            StudiedDbms::Mysql => "MySQL",
            StudiedDbms::Mariadb => "MariaDB",
        }
    }
}

impl fmt::Display for StudiedDbms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The DBMS processing stage a crash occurred in (§4.1); mirrors the engine
/// crate's stage enum but kept independent so the study crate stays a pure
/// data layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OccurrenceStage {
    /// During parsing.
    Parsing,
    /// During optimization.
    Optimization,
    /// During execution.
    Execution,
}

/// What a PoC needs before the bug-inducing statement (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Prerequisite {
    /// CREATE TABLE + INSERT.
    TableWithData,
    /// No table at all (literal-only PoC).
    NoTable,
    /// A specific table definition without data.
    EmptyTable,
}

/// Sub-classes of boundary literal values (§6, "Patterns of Boundary
/// Literal Values").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralKind {
    /// Extreme integer or decimal values (32 bugs).
    ExtremeNumeric,
    /// Empty strings or NULL (21 bugs).
    EmptyOrNull,
    /// Crafted strings in specific formats, e.g. JSON/DATE (41 bugs).
    CraftedFormat,
}

/// Root causes (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RootCause {
    /// Boundary literal values (§5.1).
    BoundaryLiteral(LiteralKind),
    /// Boundary results of type castings (§5.2).
    BoundaryCast,
    /// Boundary return values of nested functions (§5.3).
    NestedFunction,
    /// DBMS configuration (§5.4).
    Configuration,
    /// Specific table definitions (§5.4).
    TableDefinition,
    /// Complex syntax structures (§5.4).
    SyntaxStructure,
}

impl RootCause {
    /// True for the three boundary-argument causes (the 87.4 %).
    pub fn is_boundary(&self) -> bool {
        matches!(
            self,
            RootCause::BoundaryLiteral(_) | RootCause::BoundaryCast | RootCause::NestedFunction
        )
    }
}

/// One occurrence of a SQL function inside a PoC: its category and name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionOccurrence {
    /// Figure 1 category.
    pub category: FunctionCategory,
    /// Function name (real for exemplars, synthesised otherwise).
    pub name: String,
}

/// One studied bug record.
#[derive(Debug, Clone)]
pub struct StudiedBug {
    /// Sequential id within the dataset.
    pub id: u32,
    /// Which DBMS's tracker it came from.
    pub dbms: StudiedDbms,
    /// Tracker / CVE reference (`SYN-...` for synthesised records).
    pub reference: String,
    /// Crash stage, when the report contained a usable backtrace.
    pub stage: Option<OccurrenceStage>,
    /// Function expressions occurring in the bug-inducing statement; its
    /// length is the Table 2 metric.
    pub functions: Vec<FunctionOccurrence>,
    /// Prerequisite statements the PoC needs.
    pub prerequisite: Prerequisite,
    /// Root cause classification.
    pub root_cause: RootCause,
    /// The PoC, when transcribed from the paper.
    pub poc: Option<String>,
    /// True when the record was synthesised to fill the published marginal
    /// distributions (see DESIGN.md §2).
    pub synthetic: bool,
}

impl StudiedBug {
    /// The Table 2 metric: function expressions in the statement.
    pub fn expr_count(&self) -> usize {
        self.functions.len()
    }
}
