//! The 318-bug characteristic study (paper §3–§5), as data plus analyses.
//!
//! The dataset is constructed deterministically to satisfy every marginal
//! the paper publishes (see `dataset`), and the analyses in `analysis`
//! recompute Tables 1–2, Figure 1, Findings 1–4 and the root-cause
//! breakdown from the records — the unit tests assert exact agreement with
//! the published values.
//!
//! # Examples
//!
//! ```
//! use soft_study::{dataset::studied_bugs, analysis};
//!
//! let bugs = studied_bugs();
//! assert_eq!(bugs.len(), 318);
//! let rc = analysis::root_causes(&bugs);
//! assert_eq!(rc.boundary_total(), 278); // the 87.4 % headline
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod dataset;
pub mod model;

pub use analysis::{figure1, finding1, finding3, finding4, root_causes, table1, table2};
pub use dataset::studied_bugs;
pub use model::{
    FunctionOccurrence, LiteralKind, OccurrenceStage, Prerequisite, RootCause, StudiedBug,
    StudiedDbms,
};
