//! The 318-bug dataset.
//!
//! The paper publishes the study as aggregate statistics, not raw records.
//! The dataset here is therefore constructed deterministically to satisfy
//! **every published marginal simultaneously** (Table 1, Table 2, Figure 1,
//! Findings 1–4, the §5 root-cause split and the §6 literal sub-split), with
//! the paper's concretely described bugs attached as named exemplars.
//! Synthetic records are flagged `synthetic: true` and referenced `SYN-*`.

use crate::model::*;
use soft_types::category::FunctionCategory as C;

/// Deterministic splitmix64, used for the marginal-preserving shuffles.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates shuffle.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed;
    for i in (1..items.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Expands a `(value, count)` table into a flat multiset.
fn expand<T: Clone>(pairs: &[(T, usize)]) -> Vec<T> {
    pairs
        .iter()
        .flat_map(|(v, n)| std::iter::repeat_n(v.clone(), *n))
        .collect()
}

/// Figure 1 occurrence / unique-function targets per category.
///
/// The paper states string = 117 occurrences / 57 unique and aggregate = 91
/// occurrences in prose; the remaining per-category values are inferred from
/// the figure (flagged as inferred in EXPERIMENTS.md). Totals: 508
/// occurrences (Finding 2).
pub const FIGURE1_TARGETS: &[(C, usize, usize)] = &[
    (C::String, 117, 57),
    (C::Aggregate, 91, 18),
    (C::Date, 52, 20),
    (C::Math, 45, 15),
    (C::Json, 38, 15),
    (C::System, 35, 14),
    (C::Condition, 30, 9),
    (C::Spatial, 28, 12),
    (C::Casting, 25, 8),
    (C::Xml, 12, 5),
    (C::Comparison, 10, 4),
    (C::Control, 10, 3),
    (C::Array, 8, 4),
    (C::Sequence, 5, 3),
    (C::Map, 2, 1),
];

/// Builds the full dataset (318 records).
pub fn studied_bugs() -> Vec<StudiedBug> {
    // Per-bug attribute multisets, each shuffled with its own seed so the
    // joint distribution is a deterministic product of the marginals.
    let mut expr_counts = expand(&[(1usize, 191), (2, 87), (3, 23), (4, 11), (5, 6)]);
    shuffle(&mut expr_counts, 0xE1);
    let mut stages = expand(&[
        (Some(OccurrenceStage::Execution), 161),
        (Some(OccurrenceStage::Optimization), 45),
        (Some(OccurrenceStage::Parsing), 24),
        (None, 318 - 230),
    ]);
    shuffle(&mut stages, 0xE2);
    let mut prereqs = expand(&[
        (Prerequisite::TableWithData, 151),
        (Prerequisite::NoTable, 132),
        (Prerequisite::EmptyTable, 35),
    ]);
    shuffle(&mut prereqs, 0xE3);
    let mut causes = expand(&[
        (RootCause::BoundaryLiteral(LiteralKind::ExtremeNumeric), 32),
        (RootCause::BoundaryLiteral(LiteralKind::EmptyOrNull), 21),
        (RootCause::BoundaryLiteral(LiteralKind::CraftedFormat), 41),
        (RootCause::BoundaryCast, 74),
        (RootCause::NestedFunction, 110),
        (RootCause::Configuration, 8),
        (RootCause::TableDefinition, 24),
        (RootCause::SyntaxStructure, 8),
    ]);
    shuffle(&mut causes, 0xE4);
    // The 508 function occurrences as category tokens.
    let mut category_tokens: Vec<C> = FIGURE1_TARGETS
        .iter()
        .flat_map(|(c, occ, _)| std::iter::repeat_n(*c, *occ))
        .collect();
    debug_assert_eq!(category_tokens.len(), 508);
    shuffle(&mut category_tokens, 0xE5);
    // Unique-name pools: the first `unique` occurrences of a category get
    // fresh names; later occurrences reuse the pool cyclically.
    let mut name_counters: std::collections::HashMap<C, usize> = Default::default();
    let unique_target: std::collections::HashMap<C, usize> =
        FIGURE1_TARGETS.iter().map(|(c, _, u)| (*c, *u)).collect();
    let mut next_token = 0usize;
    let mut take_occurrence = |tokens: &[C], counters: &mut std::collections::HashMap<C, usize>| {
        let c = tokens[next_token];
        next_token += 1;
        let seen = counters.entry(c).or_insert(0);
        let uniq = unique_target[&c];
        let ordinal = if *seen < uniq { *seen } else { *seen % uniq };
        *seen += 1;
        FunctionOccurrence { category: c, name: format!("{}_fn{:02}", c.label(), ordinal) }
    };

    let mut out = Vec::with_capacity(318);
    for id in 0..318u32 {
        let dbms = if id < 39 {
            StudiedDbms::Postgres
        } else if id < 49 {
            StudiedDbms::Mysql
        } else {
            StudiedDbms::Mariadb
        };
        let n = expr_counts[id as usize];
        let functions: Vec<FunctionOccurrence> =
            (0..n).map(|_| take_occurrence(&category_tokens, &mut name_counters)).collect();
        out.push(StudiedBug {
            id,
            dbms,
            reference: format!("SYN-{id:03}"),
            stage: stages[id as usize],
            functions,
            prerequisite: prereqs[id as usize],
            root_cause: causes[id as usize],
            poc: None,
            synthetic: true,
        });
    }
    attach_exemplars(&mut out);
    out
}

/// A real bug from the paper, matched onto the first synthetic record with
/// compatible attributes and decorated with its reference and PoC.
struct Exemplar {
    reference: &'static str,
    dbms: StudiedDbms,
    root_cause: RootCause,
    poc: &'static str,
    /// Categories that should appear among the record's occurrences (the
    /// matcher relabels the record's occurrence list).
    categories: &'static [C],
}

const EXEMPLARS: &[Exemplar] = &[
    Exemplar {
        reference: "CVE-2016-0773",
        dbms: StudiedDbms::Postgres,
        root_cause: RootCause::BoundaryLiteral(LiteralKind::ExtremeNumeric),
        poc: "SELECT 'x' LIKE 'a'", // placeholder shape; the CVE is a regex bound
        categories: &[C::String],
    },
    Exemplar {
        reference: "CVE-2015-5289",
        dbms: StudiedDbms::Postgres,
        root_cause: RootCause::NestedFunction,
        poc: "SELECT REPEAT('[', 1000)::json",
        categories: &[C::String],
    },
    Exemplar {
        reference: "MDEV-23415",
        dbms: StudiedDbms::Mariadb,
        root_cause: RootCause::BoundaryLiteral(LiteralKind::ExtremeNumeric),
        poc: "SELECT FORMAT('0', 50, 'de_DE')",
        categories: &[C::String],
    },
    Exemplar {
        reference: "MDEV-8407",
        dbms: StudiedDbms::Mariadb,
        root_cause: RootCause::BoundaryCast,
        poc: "SELECT COLUMN_JSON(COLUMN_CREATE('x', 123456789012345678901234567890123456789012346789))",
        categories: &[C::Json, C::Json],
    },
    Exemplar {
        reference: "MDEV-11030",
        dbms: StudiedDbms::Mariadb,
        root_cause: RootCause::BoundaryCast,
        poc: "SELECT * FROM (SELECT IFNULL(CONVERT(NULL, UNSIGNED), NULL)) sq",
        categories: &[C::Condition],
    },
    Exemplar {
        reference: "MDEV-14596",
        dbms: StudiedDbms::Mariadb,
        root_cause: RootCause::NestedFunction,
        poc: "SELECT INTERVAL(ROW(1,1), ROW(1,2))",
        categories: &[C::Condition],
    },
];

fn attach_exemplars(bugs: &mut [StudiedBug]) {
    for ex in EXEMPLARS {
        let mut want: Vec<C> = ex.categories.to_vec();
        want.sort();
        let cats_of = |b: &StudiedBug| {
            let mut have: Vec<C> = b.functions.iter().map(|f| f.category).collect();
            have.sort();
            have
        };
        let base_match = |b: &StudiedBug| {
            b.synthetic
                && b.dbms == ex.dbms
                && b.root_cause == ex.root_cause
                && b.functions.len() == ex.categories.len()
        };
        // Preferred: a record that already carries the right categories.
        let exact = bugs.iter().position(|b| base_match(b) && cats_of(b) == want);
        let idx = match exact {
            Some(i) => Some(i),
            None => {
                // Fallback: take any attribute-matching record and swap its
                // occurrence list with another equal-arity record that has
                // the right categories — global Figure 1 totals are
                // preserved by the swap.
                let a = bugs.iter().position(base_match);
                let b_idx = bugs.iter().position(|b| {
                    b.synthetic && b.functions.len() == ex.categories.len() && cats_of(b) == want
                });
                match (a, b_idx) {
                    (Some(a), Some(bi)) if a != bi => {
                        let tmp = bugs[a].functions.clone();
                        bugs[a].functions = bugs[bi].functions.clone();
                        bugs[bi].functions = tmp;
                        Some(a)
                    }
                    // Last resort: decorate without relabelling categories.
                    (Some(a), _) => Some(a),
                    _ => None,
                }
            }
        };
        if let Some(i) = idx {
            bugs[i].reference = ex.reference.to_string();
            bugs[i].poc = Some(ex.poc.to_string());
            bugs[i].synthetic = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_318_records() {
        assert_eq!(studied_bugs().len(), 318);
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = studied_bugs();
        let b = studied_bugs();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.reference, y.reference);
            assert_eq!(x.root_cause, y.root_cause);
            assert_eq!(x.expr_count(), y.expr_count());
        }
    }

    #[test]
    fn exemplars_are_attached() {
        let bugs = studied_bugs();
        let named: Vec<&str> = bugs
            .iter()
            .filter(|b| !b.synthetic)
            .map(|b| b.reference.as_str())
            .collect();
        for ex in ["MDEV-8407", "MDEV-14596", "CVE-2015-5289", "MDEV-23415"] {
            assert!(named.contains(&ex), "{ex} not attached: {named:?}");
        }
    }

    #[test]
    fn figure1_targets_sum_to_508() {
        let occ: usize = FIGURE1_TARGETS.iter().map(|(_, o, _)| o).sum();
        assert_eq!(occ, 508);
        for (c, occ, uniq) in FIGURE1_TARGETS {
            assert!(occ >= uniq, "{c}: occurrences < unique");
        }
    }
}

#[cfg(test)]
mod joint_tests {
    use super::*;
    use crate::model::{RootCause, StudiedDbms};

    #[test]
    fn joint_distribution_is_not_degenerate() {
        // The shuffles must decorrelate attributes: MariaDB (the bulk of the
        // data) should exhibit every root cause, and every expression-count
        // bucket should contain bugs from MariaDB.
        let bugs = studied_bugs();
        let mariadb: Vec<_> =
            bugs.iter().filter(|b| b.dbms == StudiedDbms::Mariadb).collect();
        let causes: std::collections::HashSet<std::mem::Discriminant<RootCause>> =
            mariadb.iter().map(|b| std::mem::discriminant(&b.root_cause)).collect();
        assert!(causes.len() >= 5, "MariaDB shows only {} root causes", causes.len());
        for n in 1..=5usize {
            assert!(
                mariadb.iter().any(|b| b.expr_count() == n),
                "no MariaDB bug with {n} expressions"
            );
        }
        // PostgreSQL (39 records) should still show the three boundary
        // causes.
        let pg_boundary = bugs
            .iter()
            .filter(|b| b.dbms == StudiedDbms::Postgres && b.root_cause.is_boundary())
            .count();
        assert!(pg_boundary >= 25, "{pg_boundary}");
    }
}
