//! Analyses over the dataset: the exact computations behind Tables 1–2,
//! Figure 1, Findings 1–4 and the §5 root-cause breakdown, plus the paper's
//! published values for comparison.

use crate::model::*;
use soft_types::category::FunctionCategory;
use std::collections::{BTreeMap, HashSet};

/// Table 1: studied bugs per DBMS.
pub fn table1(bugs: &[StudiedBug]) -> Vec<(StudiedDbms, usize)> {
    StudiedDbms::ALL
        .iter()
        .map(|d| (*d, bugs.iter().filter(|b| b.dbms == *d).count()))
        .collect()
}

/// Finding 1: crash-stage distribution over bugs with backtraces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Bugs whose report had an identifiable backtrace.
    pub with_backtrace: usize,
    /// Crashes at execution.
    pub execution: usize,
    /// Crashes at optimization.
    pub optimization: usize,
    /// Crashes at parsing.
    pub parsing: usize,
}

/// Computes Finding 1.
pub fn finding1(bugs: &[StudiedBug]) -> StageBreakdown {
    let mut out = StageBreakdown { with_backtrace: 0, execution: 0, optimization: 0, parsing: 0 };
    for b in bugs {
        match b.stage {
            Some(OccurrenceStage::Execution) => {
                out.with_backtrace += 1;
                out.execution += 1;
            }
            Some(OccurrenceStage::Optimization) => {
                out.with_backtrace += 1;
                out.optimization += 1;
            }
            Some(OccurrenceStage::Parsing) => {
                out.with_backtrace += 1;
                out.parsing += 1;
            }
            None => {}
        }
    }
    out
}

/// Figure 1 / Finding 2: per-category occurrence and unique-function counts.
pub fn figure1(bugs: &[StudiedBug]) -> Vec<(FunctionCategory, usize, usize)> {
    let mut occ: BTreeMap<FunctionCategory, usize> = BTreeMap::new();
    let mut uniq: BTreeMap<FunctionCategory, HashSet<&str>> = BTreeMap::new();
    for b in bugs {
        for f in &b.functions {
            *occ.entry(f.category).or_insert(0) += 1;
            uniq.entry(f.category).or_default().insert(&f.name);
        }
    }
    let mut out: Vec<(FunctionCategory, usize, usize)> = occ
        .into_iter()
        .map(|(c, o)| (c, o, uniq.get(&c).map(HashSet::len).unwrap_or(0)))
        .collect();
    out.sort_by_key(|&(_, occ, _)| std::cmp::Reverse(occ));
    out
}

/// Total function-expression occurrences (Finding 2's 508).
pub fn total_occurrences(bugs: &[StudiedBug]) -> usize {
    bugs.iter().map(StudiedBug::expr_count).sum()
}

/// Table 2: histogram of function-expression counts per bug-inducing
/// statement; the last bucket is `>= 5`.
pub fn table2(bugs: &[StudiedBug]) -> [usize; 5] {
    let mut out = [0usize; 5];
    for b in bugs {
        let n = b.expr_count().clamp(1, 5);
        out[n - 1] += 1;
    }
    out
}

/// Finding 3: bugs with at most two function expressions.
pub fn finding3(bugs: &[StudiedBug]) -> usize {
    bugs.iter().filter(|b| b.expr_count() <= 2).count()
}

/// Finding 4: prerequisite distribution.
pub fn finding4(bugs: &[StudiedBug]) -> [(Prerequisite, usize); 3] {
    [
        Prerequisite::TableWithData,
        Prerequisite::NoTable,
        Prerequisite::EmptyTable,
    ]
    .map(|p| (p, bugs.iter().filter(|b| b.prerequisite == p).count()))
}

/// §5 root-cause breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootCauseBreakdown {
    /// Boundary literal values (total).
    pub literal: usize,
    /// ... of which extreme numerics.
    pub literal_extreme: usize,
    /// ... of which empty string / NULL.
    pub literal_empty_null: usize,
    /// ... of which crafted formats.
    pub literal_crafted: usize,
    /// Boundary type castings.
    pub casting: usize,
    /// Nested-function returns.
    pub nested: usize,
    /// Configurations.
    pub configuration: usize,
    /// Table definitions.
    pub table_definition: usize,
    /// Syntax structures.
    pub syntax: usize,
}

impl RootCauseBreakdown {
    /// The boundary-argument total (87.4 % claim).
    pub fn boundary_total(&self) -> usize {
        self.literal + self.casting + self.nested
    }
}

/// Computes the §5 breakdown.
pub fn root_causes(bugs: &[StudiedBug]) -> RootCauseBreakdown {
    let mut out = RootCauseBreakdown {
        literal: 0,
        literal_extreme: 0,
        literal_empty_null: 0,
        literal_crafted: 0,
        casting: 0,
        nested: 0,
        configuration: 0,
        table_definition: 0,
        syntax: 0,
    };
    for b in bugs {
        match b.root_cause {
            RootCause::BoundaryLiteral(k) => {
                out.literal += 1;
                match k {
                    LiteralKind::ExtremeNumeric => out.literal_extreme += 1,
                    LiteralKind::EmptyOrNull => out.literal_empty_null += 1,
                    LiteralKind::CraftedFormat => out.literal_crafted += 1,
                }
            }
            RootCause::BoundaryCast => out.casting += 1,
            RootCause::NestedFunction => out.nested += 1,
            RootCause::Configuration => out.configuration += 1,
            RootCause::TableDefinition => out.table_definition += 1,
            RootCause::SyntaxStructure => out.syntax += 1,
        }
    }
    out
}

/// The paper's published values, for paper-vs-measured reporting.
pub mod paper {
    /// Table 1 row.
    pub const TABLE1: [(&str, usize); 3] =
        [("PostgreSQL", 39), ("MySQL", 10), ("MariaDB", 269)];
    /// Total studied bugs.
    pub const TOTAL_BUGS: usize = 318;
    /// Finding 1 values.
    pub const WITH_BACKTRACE: usize = 230;
    /// Execution-stage crashes.
    pub const STAGE_EXECUTION: usize = 161;
    /// Optimization-stage crashes.
    pub const STAGE_OPTIMIZATION: usize = 45;
    /// Parsing-stage crashes.
    pub const STAGE_PARSING: usize = 24;
    /// Finding 2: total function-expression occurrences.
    pub const TOTAL_OCCURRENCES: usize = 508;
    /// Figure 1: string occurrences / unique functions.
    pub const STRING_OCCURRENCES: usize = 117;
    /// Unique string functions.
    pub const STRING_UNIQUE: usize = 57;
    /// Aggregate occurrences.
    pub const AGGREGATE_OCCURRENCES: usize = 91;
    /// Table 2 histogram (1, 2, 3, 4, >=5).
    pub const TABLE2: [usize; 5] = [191, 87, 23, 11, 6];
    /// Finding 4 (table+data, no table, empty table).
    pub const FINDING4: [usize; 3] = [151, 132, 35];
    /// §5 root causes: literals, castings, nested, config, table defs,
    /// syntax.
    pub const ROOT_CAUSES: [usize; 6] = [94, 74, 110, 8, 24, 8];
    /// §6 literal sub-split: extreme, empty/NULL, crafted.
    pub const LITERAL_SPLIT: [usize; 3] = [32, 21, 41];
    /// The headline boundary share.
    pub const BOUNDARY_TOTAL: usize = 278;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::studied_bugs;

    #[test]
    fn table1_matches_paper() {
        let t = table1(&studied_bugs());
        assert_eq!(t[0], (StudiedDbms::Postgres, 39));
        assert_eq!(t[1], (StudiedDbms::Mysql, 10));
        assert_eq!(t[2], (StudiedDbms::Mariadb, 269));
    }

    #[test]
    fn finding1_matches_paper() {
        let f = finding1(&studied_bugs());
        assert_eq!(f.with_backtrace, paper::WITH_BACKTRACE);
        assert_eq!(f.execution, paper::STAGE_EXECUTION);
        assert_eq!(f.optimization, paper::STAGE_OPTIMIZATION);
        assert_eq!(f.parsing, paper::STAGE_PARSING);
    }

    #[test]
    fn finding2_and_figure1_match_paper() {
        let bugs = studied_bugs();
        assert_eq!(total_occurrences(&bugs), paper::TOTAL_OCCURRENCES);
        let fig = figure1(&bugs);
        // String leads with 117/57, aggregate second with 91.
        assert_eq!(fig[0].0.label(), "string");
        assert_eq!(fig[0].1, paper::STRING_OCCURRENCES);
        assert_eq!(fig[0].2, paper::STRING_UNIQUE);
        assert_eq!(fig[1].0.label(), "aggregate");
        assert_eq!(fig[1].1, paper::AGGREGATE_OCCURRENCES);
    }

    #[test]
    fn table2_and_finding3_match_paper() {
        let bugs = studied_bugs();
        assert_eq!(table2(&bugs), paper::TABLE2);
        assert_eq!(finding3(&bugs), 278);
    }

    #[test]
    fn finding4_matches_paper() {
        let f = finding4(&studied_bugs());
        assert_eq!(f[0].1, 151);
        assert_eq!(f[1].1, 132);
        assert_eq!(f[2].1, 35);
    }

    #[test]
    fn root_causes_match_paper() {
        let rc = root_causes(&studied_bugs());
        assert_eq!(rc.literal, 94);
        assert_eq!(rc.casting, 74);
        assert_eq!(rc.nested, 110);
        assert_eq!(rc.configuration, 8);
        assert_eq!(rc.table_definition, 24);
        assert_eq!(rc.syntax, 8);
        assert_eq!(rc.boundary_total(), paper::BOUNDARY_TOTAL);
        assert_eq!(rc.literal_extreme, 32);
        assert_eq!(rc.literal_empty_null, 21);
        assert_eq!(rc.literal_crafted, 41);
        // The 87.4 % headline.
        let share = rc.boundary_total() as f64 / 318.0;
        assert!((share - 0.874).abs() < 0.001, "{share}");
    }
}
