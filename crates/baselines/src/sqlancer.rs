//! SQLancer-lite (PQS mode): pivoted query synthesis with a hand-modelled
//! function subset.
//!
//! SQLancer's strength is its logic oracle, not function exploration: every
//! supported function needs a hand-written model, so only a small fixed set
//! participates in generation (§7.5: "SQLancer requires writing function
//! models in Java code to support the generation of a new function, and it
//! only supports generating random values for SQL function arguments").

use crate::common;
use soft_rng::Rng;
use soft_core::StatementGenerator;

/// The hand-modelled function set (name, arity) — the PQS operator models.
const MODELED_FUNCTIONS: &[(&str, usize)] = &[
    ("abs", 1),
    ("length", 1),
    ("upper", 1),
    ("lower", 1),
    ("trim", 1),
    ("ltrim", 1),
    ("rtrim", 1),
    ("round", 1),
    ("floor", 1),
    ("ceil", 1),
    ("sign", 1),
    ("sqrt", 1),
    ("exp", 1),
    ("reverse", 1),
    ("ascii", 1),
    ("hex", 1),
    ("mod", 2),
    ("pow", 2),
    ("substr", 2),
    ("left", 2),
    ("right", 2),
    ("instr", 2),
    ("concat", 2),
    ("nullif", 2),
    ("ifnull", 2),
    ("coalesce", 2),
    ("greatest", 2),
    ("least", 2),
    ("replace", 3),
    ("lpad", 3),
    ("count", 1),
    ("sum", 1),
    ("avg", 1),
    ("min", 1),
    ("max", 1),
];

/// The generator.
pub struct SqlancerLite {
    rng: Rng,
    queue: Vec<String>,
    pivot_round: u64,
}

impl SqlancerLite {
    /// Builds a PQS-style generator.
    pub fn new(seed: u64) -> SqlancerLite {
        let mut queue = common::prelude();
        queue.reverse();
        SqlancerLite { rng: Rng::seed_from_u64(seed), queue, pivot_round: 0 }
    }

    fn modeled_call(&mut self) -> String {
        let (name, arity) = MODELED_FUNCTIONS[self.rng.gen_range(0..MODELED_FUNCTIONS.len())];
        let args: Vec<String> = (0..arity)
            .map(|_| {
                if self.rng.gen_bool(0.5) {
                    let (_, col) = common::random_column(&mut self.rng);
                    col.to_string()
                } else {
                    common::random_plain_literal(&mut self.rng)
                }
            })
            .collect();
        format!("{}({})", name, args.join(", "))
    }

    /// One PQS iteration: pick a pivot row (modelled by fixed predicates on
    /// the prelude data) and synthesise a query whose WHERE must select it.
    fn pivot_query(&mut self) -> String {
        self.pivot_round += 1;
        let (table, col) = common::random_column(&mut self.rng);
        // The pivot predicate: a rectified comparison that is true on the
        // pivot row, possibly wrapped in modelled functions.
        let wrapped = if self.rng.gen_bool(0.5) {
            self.modeled_call()
        } else {
            col.to_string()
        };
        let aggregate_or_plain = if self.rng.gen_bool(0.3) {
            format!("COUNT({col})")
        } else {
            wrapped.clone()
        };
        let mut sql = format!("SELECT {aggregate_or_plain} FROM {table}");
        let pred = match self.rng.gen_range(0..3) {
            0 => format!("{col} IS NOT NULL"),
            1 => format!(
                "{} {} {}",
                wrapped,
                common::random_cmp(&mut self.rng),
                common::random_plain_literal(&mut self.rng)
            ),
            _ => format!("NOT ({col} IS NULL)"),
        };
        if aggregate_or_plain.starts_with("COUNT") {
            sql.push_str(&format!(" WHERE {pred}"));
        } else {
            sql.push_str(&format!(" WHERE {pred} LIMIT 1"));
        }
        sql
    }
}

impl StatementGenerator for SqlancerLite {
    fn name(&self) -> &'static str {
        "sqlancer"
    }

    fn next_statement(&mut self) -> Option<String> {
        if let Some(prep) = self.queue.pop() {
            return Some(prep);
        }
        Some(self.pivot_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generates_parseable_pivot_queries() {
        let mut g = SqlancerLite::new(5);
        for i in 0..300 {
            let sql = g.next_statement().expect("infinite");
            soft_parser::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("case {i}: {sql}: {e}"));
        }
    }

    #[test]
    fn function_surface_is_bounded_by_models() {
        let mut g = SqlancerLite::new(6);
        let mut names: HashSet<String> = HashSet::new();
        for _ in 0..2000 {
            let sql = g.next_statement().expect("infinite");
            if let Ok(stmt) = soft_parser::parse_statement(&sql) {
                for fx in soft_parser::visit::collect_function_exprs(&stmt) {
                    names.insert(fx.name.to_ascii_lowercase());
                }
            }
        }
        assert!(
            names.len() <= MODELED_FUNCTIONS.len() + 2,
            "sqlancer-lite must stay within its models, got {names:?}"
        );
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut a = SqlancerLite::new(9);
        let mut b = SqlancerLite::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_statement(), b.next_statement());
        }
    }
}
