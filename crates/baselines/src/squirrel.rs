//! SQUIRREL-lite: IR-level mutation of a seed corpus.
//!
//! SQUIRREL parses queries into an intermediate representation and applies
//! syntax/semantics-preserving mutations, concentrating its budget on
//! *clause structure* rather than function arguments — which is why its
//! triggered-function counts in Table 5 are the lowest of the four tools.

use crate::common;
use soft_rng::Rng;
use soft_core::StatementGenerator;
use soft_dialects::DialectProfile;
use soft_parser::ast::{Expr, Literal, Statement};
use soft_parser::visit;

/// The generator.
pub struct SquirrelLite {
    rng: Rng,
    seeds: Vec<Statement>,
    queue: Vec<String>,
    round: usize,
}

impl SquirrelLite {
    /// Builds the mutator from a target's seed corpus.
    pub fn new(profile: &DialectProfile, seed: u64) -> SquirrelLite {
        let mut seeds = Vec::new();
        for sql in &profile.seed_corpus {
            if let Ok(stmt) = soft_parser::parse_statement(sql) {
                if matches!(stmt, Statement::Select(_)) {
                    seeds.push(stmt);
                }
            }
        }
        let mut queue = common::prelude();
        // SQUIRREL replays the corpus's own schema too.
        for sql in &profile.seed_corpus {
            if sql.starts_with("CREATE") || sql.starts_with("INSERT") {
                queue.push(sql.clone());
            }
        }
        queue.reverse();
        SquirrelLite { rng: Rng::seed_from_u64(seed), seeds, queue, round: 0 }
    }

    /// One IR mutation of a seed: literal substitution (type-preserving,
    /// mid-range), clause append, or query combination.
    fn mutate(&mut self) -> String {
        let idx = self.round % self.seeds.len();
        self.round += 1;
        let mut stmt = self.seeds[idx].clone();
        match self.rng.gen_range(0..4) {
            0 => {
                // Literal substitution: replace literals with fresh
                // mid-range values of the same type.
                let replace_number = self.rng.gen_range(0..100i64).to_string();
                let replace_string: String = {
                    let len = self.rng.gen_range(1..5usize);
                    (0..len).map(|_| (b'a' + self.rng.gen_range(0..26u8)) as char).collect()
                };
                visit::visit_exprs_mut(&mut stmt, &mut |e| {
                    if let Expr::Literal(l) = e {
                        match l {
                            Literal::Number(n) => *n = replace_number.clone(),
                            Literal::String(s) if !s.is_empty() => {
                                *s = replace_string.clone();
                            }
                            _ => {}
                        }
                    }
                });
                stmt.to_string()
            }
            1 => {
                // Clause append: extra predicate.
                let (_, col) = common::random_column(&mut self.rng);
                let base = stmt.to_string();
                if base.contains("WHERE") || base.contains("GROUP BY") {
                    base
                } else {
                    format!(
                        "{base} WHERE {col} {} {}",
                        common::random_cmp(&mut self.rng),
                        common::random_plain_literal(&mut self.rng)
                    )
                }
            }
            2 => {
                // Query combination via UNION.
                let other = &self.seeds[self.rng.gen_range(0..self.seeds.len())];
                let a = stmt.to_string();
                let b = other.to_string();
                // Only combine single-column shapes to keep validity high.
                if a.matches(',').count() == 0 && b.matches(',').count() == 0 {
                    format!("{a} UNION {b}")
                } else {
                    a
                }
            }
            _ => {
                // Plain replay with a LIMIT twist.
                format!("{} LIMIT {}", stmt, self.rng.gen_range(1..10))
            }
        }
    }
}

impl StatementGenerator for SquirrelLite {
    fn name(&self) -> &'static str {
        "squirrel"
    }

    fn next_statement(&mut self) -> Option<String> {
        if let Some(prep) = self.queue.pop() {
            return Some(prep);
        }
        if self.seeds.is_empty() {
            return None;
        }
        Some(self.mutate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_dialects::DialectId;

    #[test]
    fn mutations_mostly_parse() {
        let profile = DialectProfile::build(DialectId::Mariadb);
        let mut g = SquirrelLite::new(&profile, 11);
        let mut ok = 0;
        let total = 400;
        for _ in 0..total {
            let sql = g.next_statement().expect("stream");
            if soft_parser::parse_statement(&sql).is_ok() {
                ok += 1;
            }
        }
        assert!(ok * 10 >= total * 9, "{ok}/{total} parsed");
    }

    #[test]
    fn function_surface_stays_near_seeds() {
        let profile = DialectProfile::build(DialectId::Mysql);
        let mut g = SquirrelLite::new(&profile, 12);
        let mut names = std::collections::HashSet::new();
        for _ in 0..1000 {
            let sql = g.next_statement().expect("stream");
            if let Ok(stmt) = soft_parser::parse_statement(&sql) {
                for fx in soft_parser::visit::collect_function_exprs(&stmt) {
                    names.insert(fx.name.to_ascii_lowercase());
                }
            }
        }
        // SQUIRREL only sees the functions its seeds mention.
        assert!(names.len() < 60, "{}", names.len());
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;
    use soft_dialects::DialectId;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let profile = DialectProfile::build(DialectId::Postgres);
        let mut a = SquirrelLite::new(&profile, 4);
        let mut b = SquirrelLite::new(&profile, 4);
        for _ in 0..100 {
            assert_eq!(a.next_statement(), b.next_statement());
        }
    }

    #[test]
    fn mutations_preserve_the_seed_function_vocabulary() {
        let profile = DialectProfile::build(DialectId::Mysql);
        let seeds_fns: std::collections::HashSet<String> = profile
            .seed_corpus
            .iter()
            .filter_map(|sql| soft_parser::parse_statement(sql).ok())
            .flat_map(|stmt| soft_parser::visit::collect_function_exprs(&stmt))
            .map(|f| f.name.to_ascii_lowercase())
            .collect();
        let mut g = SquirrelLite::new(&profile, 5);
        for _ in 0..500 {
            let sql = g.next_statement().expect("stream");
            if let Ok(stmt) = soft_parser::parse_statement(&sql) {
                for fx in soft_parser::visit::collect_function_exprs(&stmt) {
                    assert!(
                        seeds_fns.contains(&fx.name.to_ascii_lowercase()),
                        "mutation invented function {}",
                        fx.name
                    );
                }
            }
        }
    }
}
