//! Lite reimplementations of the comparison tools of §7.5: SQLsmith,
//! SQLancer (PQS mode) and SQUIRREL.
//!
//! Each baseline keeps the original tool's *generation policy* — that is
//! what the paper's comparison isolates — behind the shared
//! [`soft_core::StatementGenerator`] interface, so the same campaign
//! harness measures all four tools.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod common;
pub mod sqlancer;
pub mod sqlsmith;
pub mod squirrel;

pub use sqlancer::SqlancerLite;
pub use sqlsmith::SqlsmithLite;
pub use squirrel::SquirrelLite;
