//! Shared machinery for the baseline generators.
//!
//! Each lite baseline keeps the *generation policy* of the original tool
//! (see DESIGN.md §2): grammar-random catalog-driven generation for
//! SQLsmith, pivot-query synthesis with a hand-modelled function subset for
//! SQLancer, and IR mutation of a seed corpus for SQUIRREL. All three keep
//! their originals' typed-expression discipline: function arguments are
//! well-typed columns and mid-range literals, never the bare boundary
//! values (`NULL`, `''`, `*`, 45-digit numbers) that SOFT's P1.1 pool is
//! built from — which is precisely the paper's explanation for why they
//! miss SQL function bugs.

use soft_rng::Rng;

/// The schema every baseline works against (created by its own prelude,
/// mirroring the shared seed schema).
pub const TABLES: &[(&str, &[(&str, &str)])] = &[
    ("t1", &[("a", "INTEGER"), ("b", "TEXT"), ("c", "DOUBLE")]),
    ("t2", &[("k", "TEXT"), ("v", "INTEGER")]),
];

/// DDL/DML prelude statements.
pub fn prelude() -> Vec<String> {
    vec![
        "CREATE TABLE IF NOT EXISTS t1 (a INTEGER, b TEXT, c DOUBLE)".into(),
        "INSERT INTO t1 VALUES (1, 'alpha', 1.5), (2, 'beta', 2.5), (3, 'gamma', -0.5)".into(),
        "CREATE TABLE IF NOT EXISTS t2 (k TEXT, v INTEGER)".into(),
        "INSERT INTO t2 VALUES ('x', 10), ('x', 20), ('y', 30)".into(),
    ]
}

/// A mid-range random literal of the kind the baselines emit: small
/// integers, small floats, short lowercase strings.
pub fn random_plain_literal(rng: &mut Rng) -> String {
    match rng.gen_range(0..6) {
        0 | 1 => rng.gen_range(0..100i64).to_string(),
        2 => format!("{:.2}", rng.gen_range(0.0..10.0f64)),
        3 => {
            let len = rng.gen_range(1..6usize);
            let s: String =
                (0..len).map(|_| (b'a' + rng.gen_range(0..26u8)) as char).collect();
            format!("'{s}'")
        }
        4 => "TRUE".to_string(),
        _ => rng.gen_range(-50..0i64).to_string(),
    }
}

/// A random column reference from the baseline schema.
pub fn random_column(rng: &mut Rng) -> (&'static str, &'static str) {
    let (table, cols) = TABLES[rng.gen_range(0..TABLES.len())];
    let (col, _) = cols[rng.gen_range(0..cols.len())];
    (table, col)
}

/// A random comparison operator.
pub fn random_cmp(rng: &mut Rng) -> &'static str {
    ["=", "<>", "<", "<=", ">", ">="][rng.gen_range(0..6usize)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_literals_avoid_boundary_values() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..500 {
            let lit = random_plain_literal(&mut rng);
            assert_ne!(lit, "NULL");
            assert_ne!(lit, "''");
            assert_ne!(lit, "*");
            assert!(lit.len() < 12, "{lit} is suspiciously long");
        }
    }

    #[test]
    fn prelude_parses() {
        for sql in prelude() {
            soft_parser::parse_statement(&sql).unwrap();
        }
    }
}
