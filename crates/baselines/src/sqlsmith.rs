//! SQLsmith-lite: grammar-random, catalog-driven query generation.
//!
//! SQLsmith reads the target's system catalog and composes random typed
//! expressions over it, which is why it triggers many distinct functions
//! (Table 5: 417 on PostgreSQL — more than SQLancer or SQUIRREL) while its
//! mid-range arguments almost never sit on a boundary.

use crate::common;
use soft_rng::Rng;
use soft_core::StatementGenerator;
use soft_dialects::DialectProfile;

/// The generator.
pub struct SqlsmithLite {
    rng: Rng,
    /// (name, example-arity) pairs read from the catalog.
    functions: Vec<(String, usize)>,
    queue: Vec<String>,
}

impl SqlsmithLite {
    /// Builds a generator against one target's catalog.
    pub fn new(profile: &DialectProfile, seed: u64) -> SqlsmithLite {
        // Read the "system catalog": every exposed function name with the
        // arity of its documented example.
        let functions = profile
            .documentation
            .iter()
            .map(|d| {
                let open = d.example.find('(').unwrap_or(d.example.len());
                let inner = &d.example[open..];
                let arity = if inner == "()" || inner.is_empty() {
                    0
                } else {
                    // Count top-level commas + 1.
                    let mut depth = 0i32;
                    let mut in_str = false;
                    let mut n = 1usize;
                    for b in inner.bytes() {
                        match b {
                            b'\'' => in_str = !in_str,
                            b'(' | b'[' if !in_str => depth += 1,
                            b')' | b']' if !in_str => depth -= 1,
                            b',' if !in_str && depth == 1 => n += 1,
                            _ => {}
                        }
                    }
                    n
                };
                (d.name.clone(), arity)
            })
            .collect();
        let mut queue = common::prelude();
        queue.reverse();
        SqlsmithLite { rng: Rng::seed_from_u64(seed), functions, queue }
    }

    fn random_arg(&mut self) -> String {
        if self.rng.gen_bool(0.4) {
            let (_, col) = common::random_column(&mut self.rng);
            col.to_string()
        } else {
            common::random_plain_literal(&mut self.rng)
        }
    }

    fn random_function_call(&mut self) -> String {
        let idx = self.rng.gen_range(0..self.functions.len());
        let (name, arity) = self.functions[idx].clone();
        let args: Vec<String> = (0..arity).map(|_| self.random_arg()).collect();
        format!("{}({})", name, args.join(", "))
    }

    fn random_scalar(&mut self) -> String {
        match self.rng.gen_range(0..8) {
            0..=3 => self.random_function_call(),
            4 => {
                let a = self.random_arg();
                let b = self.random_arg();
                let op = ["+", "-", "*", "/"][self.rng.gen_range(0..4usize)];
                format!("{a} {op} {b}")
            }
            5 => common::random_plain_literal(&mut self.rng),
            6 => {
                let (_, col) = common::random_column(&mut self.rng);
                col.to_string()
            }
            _ => format!(
                "CASE WHEN {} {} {} THEN {} ELSE {} END",
                self.random_arg(),
                common::random_cmp(&mut self.rng),
                self.random_arg(),
                common::random_plain_literal(&mut self.rng),
                common::random_plain_literal(&mut self.rng)
            ),
        }
    }

    fn random_query(&mut self) -> String {
        let nproj = self.rng.gen_range(1..4usize);
        let projections: Vec<String> = (0..nproj).map(|_| self.random_scalar()).collect();
        let (table, col) = common::random_column(&mut self.rng);
        let mut sql = format!("SELECT {} FROM {}", projections.join(", "), table);
        if self.rng.gen_bool(0.6) {
            sql.push_str(&format!(
                " WHERE {} {} {}",
                col,
                common::random_cmp(&mut self.rng),
                common::random_plain_literal(&mut self.rng)
            ));
        }
        if self.rng.gen_bool(0.3) {
            sql.push_str(&format!(" ORDER BY {col}"));
        }
        if self.rng.gen_bool(0.3) {
            sql.push_str(&format!(" LIMIT {}", self.rng.gen_range(1..20)));
        }
        sql
    }
}

impl StatementGenerator for SqlsmithLite {
    fn name(&self) -> &'static str {
        "sqlsmith"
    }

    fn next_statement(&mut self) -> Option<String> {
        if let Some(prep) = self.queue.pop() {
            return Some(prep);
        }
        Some(self.random_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soft_dialects::DialectId;

    #[test]
    fn generates_parseable_statements() {
        let profile = DialectProfile::build(DialectId::Postgres);
        let mut g = SqlsmithLite::new(&profile, 1);
        let mut function_calls = 0;
        for i in 0..500 {
            let sql = g.next_statement().expect("infinite stream");
            soft_parser::parse_statement(&sql)
                .unwrap_or_else(|e| panic!("case {i}: {sql}: {e}"));
            if sql.contains('(') {
                function_calls += 1;
            }
        }
        assert!(function_calls > 200, "sqlsmith-lite should be function-heavy");
    }

    #[test]
    fn is_deterministic_per_seed() {
        let profile = DialectProfile::build(DialectId::Mysql);
        let mut a = SqlsmithLite::new(&profile, 42);
        let mut b = SqlsmithLite::new(&profile, 42);
        for _ in 0..50 {
            assert_eq!(a.next_statement(), b.next_statement());
        }
        let mut c = SqlsmithLite::new(&profile, 43);
        let differs = (0..50).any(|_| a.next_statement() != c.next_statement());
        assert!(differs);
    }
}
